package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// Router metrics. Per-replica counters live on each Replica; the
// admission gate mints cluster.{inflight_max,throttled_429,shed.*}.
var (
	routedRequests  = obs.GetCounter("cluster.requests_routed")
	routedInstances = obs.GetCounter("cluster.instances_routed")
	fanouts         = obs.GetCounter("cluster.fanouts")
	failovers       = obs.GetCounter("cluster.failovers")
	partitions      = obs.GetCounter("cluster.partitions")
	noHealthy       = obs.GetCounter("cluster.no_healthy_replica")
	rollouts        = obs.GetCounter("cluster.rollouts")
	routerPanics    = obs.GetCounter("cluster.panics_recovered")
	routerDeadline  = obs.GetCounter("cluster.deadline_exceeded")
	replicasHealthy = obs.GetGauge("cluster.replicas_healthy")
)

// Router is the cluster front-end: it owns the fleet, the ring, and
// the admission gate, and exposes the same HTTP surface as a single
// serve.Server — a client cannot tell (and must not be able to tell,
// bit for bit) whether it is talking to one node or the fleet.
type Router struct {
	cfg      Config
	replicas []*Replica
	ring     *ring
	adm      *serve.Admission

	draining atomic.Bool

	probeMu   sync.Mutex
	probeStop chan struct{}
}

// NewRouter builds a router over the replica base URLs. Replicas start
// unhealthy; probe them (ProbeAll, StartProbing, or a GET /readyz,
// which probes inline) to admit them.
func NewRouter(cfg Config, bases []string) *Router {
	cfg.defaults()
	rt := &Router{
		cfg:  cfg,
		ring: newRing(len(bases), cfg.VNodes),
		adm:  serve.NewAdmission("cluster", cfg.MaxInFlight),
	}
	for i, base := range bases {
		rt.replicas = append(rt.replicas, newReplica(i, strings.TrimSuffix(base, "/"), cfg))
	}
	return rt
}

// Replicas returns the fleet in index order.
func (rt *Router) Replicas() []*Replica { return rt.replicas }

// Owners returns the replica indices owning a model, primary first.
func (rt *Router) Owners(model string) []int {
	return rt.ring.owners(model, rt.cfg.Replication)
}

// ProbeAll probes every replica once, serially in index order, and
// returns how many are healthy. Deterministic harnesses call this
// instead of running the background prober.
func (rt *Router) ProbeAll(ctx context.Context) int {
	n := 0
	for _, r := range rt.replicas {
		r.Probe(ctx) //nolint:errcheck — health is recorded on the replica
		if r.Healthy() {
			n++
		}
	}
	replicasHealthy.Set(int64(n))
	return n
}

// StartProbing launches a background prober that re-probes the fleet
// every interval until StopProbing (or Close). The deterministic
// harness never calls this; cmd/edarouter does.
func (rt *Router) StartProbing(interval time.Duration) {
	rt.probeMu.Lock()
	defer rt.probeMu.Unlock()
	if rt.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	rt.probeStop = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				rt.ProbeAll(ctx)
				cancel()
			}
		}
	}()
}

// StopProbing stops the background prober, if running.
func (rt *Router) StopProbing() {
	rt.probeMu.Lock()
	defer rt.probeMu.Unlock()
	if rt.probeStop != nil {
		close(rt.probeStop)
		rt.probeStop = nil
	}
}

// StartDraining flips readiness off; requests already admitted finish.
func (rt *Router) StartDraining() { rt.draining.Store(true) }

// Close stops the prober and drains. Idempotent.
func (rt *Router) Close() {
	rt.StartDraining()
	rt.StopProbing()
}

// Handler returns the router's HTTP mux — the same surface as a single
// serve.Server, so serve/client works unchanged against the fleet:
//
//	GET  /healthz          router process liveness
//	GET  /readyz           200 while ≥1 replica is healthy and not draining
//	                       (unhealthy replicas are re-probed inline)
//	GET  /models           per-replica registry listing
//	POST /models/load      blue/green rollout across the model's owners
//	POST /predict/{model}  admission → shard → fan out → merge
//	GET  /metrics          deterministic obs snapshot (JSON)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", rt.wrap("healthz", rt.handleHealthz))
	mux.HandleFunc("/readyz", rt.wrap("readyz", rt.handleReadyz))
	mux.HandleFunc("/models", rt.wrap("models", rt.handleModels))
	mux.HandleFunc("/models/load", rt.wrap("models_load", rt.handleLoad))
	mux.HandleFunc("/predict/", rt.wrap("predict", rt.handlePredict))
	mux.HandleFunc("/metrics", rt.wrap("metrics", rt.handleMetrics))
	return mux
}

// wrap mints per-endpoint metrics and isolates handler panics, like the
// single-node server's wrapper (scope cluster.<endpoint>).
func (rt *Router) wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	scope := obs.Scope("cluster." + name)
	requests := scope.Counter("requests")
	latency := scope.Histogram("latency_ns")
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		t := latency.Start()
		defer t.Stop()
		defer func() {
			if rec := recover(); rec != nil {
				routerPanics.Inc()
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
			}
		}()
		h(w, r)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// replicaStatus is one fleet member's health in the /readyz reply.
type replicaStatus struct {
	Replica int    `json:"replica"`
	Base    string `json:"base"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	// Re-probe only the replicas currently out of the serving set:
	// cheap when the fleet is healthy, and the path by which a revived
	// node rejoins without waiting for the background prober.
	healthy := 0
	statuses := make([]replicaStatus, len(rt.replicas))
	for i, rep := range rt.replicas {
		if !rep.Healthy() {
			rep.Probe(r.Context()) //nolint:errcheck — outcome lands in rep's health
		}
		ok := rep.Healthy()
		if ok {
			healthy++
		}
		statuses[i] = replicaStatus{Replica: rep.Index, Base: rep.Base, Healthy: ok, Breaker: rep.BreakerState()}
	}
	replicasHealthy.Set(int64(healthy))
	status := http.StatusOK
	state := "ready"
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		state = "no healthy replicas"
	}
	writeJSON(w, status, map[string]any{"status": state, "healthy": healthy, "replicas": statuses})
}

func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	type replicaModels struct {
		Replica int                `json:"replica"`
		Base    string             `json:"base"`
		Healthy bool               `json:"healthy"`
		Models  []client.ModelInfo `json:"models,omitempty"`
		Error   string             `json:"error,omitempty"`
	}
	out := make([]replicaModels, len(rt.replicas))
	for i, rep := range rt.replicas {
		rm := replicaModels{Replica: rep.Index, Base: rep.Base, Healthy: rep.Healthy()}
		if rep.Healthy() {
			models, err := rep.models(r.Context())
			if err != nil {
				rm.Error = err.Error()
			} else {
				rm.Models = models
			}
		}
		out[i] = rm
	}
	writeJSON(w, http.StatusOK, out)
}

// loadRequest mirrors the single-node /models/load body. The router
// additionally requires "name": ownership is computed from the model
// name, and the router never reads the artifact itself.
type loadRequest struct {
	Path string `json:"path"`
	Name string `json:"name"`
}

// rolloutStep is one owner's outcome in the /models/load reply.
type rolloutStep struct {
	Replica  int    `json:"replica"`
	Base     string `json:"base"`
	OK       bool   `json:"ok"`
	Checksum string `json:"payload_sha256,omitempty"`
	Error    string `json:"error,omitempty"`
}

// handleLoad is the blue/green rollout: walk the model's owners in ring
// order, hot-loading the artifact into one replica at a time. Each
// replica's registry swap is atomic and the remaining owners keep
// serving the old version, so a rollout under live traffic drops
// nothing; a request during the transition gets one version or the
// other, both bit-exact for their artifact. 200 when every reachable
// owner loaded; 502 when none did.
func (rt *Router) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if rt.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "router is draining")
		return
	}
	var req loadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Path == "" {
		httpError(w, http.StatusBadRequest, "missing \"path\"")
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "missing \"name\": the router shards by model name")
		return
	}
	owners := rt.Owners(req.Name)
	steps := make([]rolloutStep, 0, len(owners))
	loaded := 0
	for _, oi := range owners {
		rep := rt.replicas[oi]
		step := rolloutStep{Replica: rep.Index, Base: rep.Base}
		info, err := rep.load(r.Context(), req.Path, req.Name)
		if err != nil {
			step.Error = err.Error()
		} else {
			step.OK = true
			step.Checksum = info.Checksum
			loaded++
			// The freshly loaded replica is ready by construction.
			rep.Probe(r.Context()) //nolint:errcheck — health bookkeeping only
		}
		steps = append(steps, step)
	}
	status := http.StatusOK
	if loaded == 0 {
		status = http.StatusBadGateway
	} else {
		rollouts.Inc()
	}
	writeJSON(w, status, map[string]any{"name": req.Name, "loaded": loaded, "replicas": steps})
}

// predictRequest / predictResponse mirror the single-node wire shapes:
// the merged reply must be indistinguishable from one node's.
type predictRequest struct {
	Instances [][]float64 `json:"instances"`
}

type predictResponse struct {
	Model       string    `json:"model"`
	Kind        string    `json:"kind"`
	Predictions []float64 `json:"predictions"`
}

// chunkResult is one owner's share of a fanned-out batch.
type chunkResult struct {
	preds []float64
	kind  string
	code  int // HTTP status to propagate when err != nil and a replica answered
	err   error
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if rt.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "router is draining")
		return
	}
	pri := serve.PriorityOf(r)
	if !rt.adm.Acquire(pri) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "too many in-flight requests")
		return
	}
	defer rt.adm.Release()

	ctx := r.Context()
	if rt.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.RequestTimeout)
		defer cancel()
	}

	// Chaos coverage of the routing step itself: an injected error is a
	// retryable 500 before any replica sees the request; an injected
	// delay stalls routing under the request deadline.
	if o := fault.Check(fault.SiteClusterRoute); o.Err != nil || o.Delay > 0 {
		if werr := o.Wait(ctx); werr != nil {
			rt.deadline(w, werr)
			return
		}
		if o.Err != nil {
			httpError(w, http.StatusInternalServerError, o.Err.Error())
			return
		}
	}

	name := strings.TrimPrefix(r.URL.Path, "/predict/")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", serve.MaxRequestBytes))
			return
		}
		httpError(w, http.StatusBadRequest, "read request body: "+err.Error())
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Instances) == 0 {
		httpError(w, http.StatusBadRequest, "no instances")
		return
	}

	// Owner set, partition-filtered then health-filtered. The partition
	// site is drawn once per owner in ring order — before any network
	// I/O — so the entire routing decision for a request is a fixed
	// number of deterministic draws.
	owners := rt.Owners(name)
	avail := make([]*Replica, 0, len(owners))
	for _, oi := range owners {
		rep := rt.replicas[oi]
		o := fault.Check(fault.SiteClusterReplicaDown)
		if o.Err != nil {
			partitions.Inc()
			continue
		}
		if o.Delay > 0 {
			if werr := o.Wait(ctx); werr != nil {
				rt.deadline(w, werr)
				return
			}
		}
		if rep.Healthy() {
			avail = append(avail, rep)
		}
	}
	if len(avail) == 0 {
		noHealthy.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("no healthy replica for model %q", name))
		return
	}

	// Fan out: split the batch into one contiguous chunk per healthy
	// owner (whole-batch to the primary when it is too small to be
	// worth spreading), score chunks concurrently, merge in order.
	chunks := splitChunks(req.Instances, len(avail), rt.cfg.SpreadMin)
	if len(chunks) > 1 {
		fanouts.Inc()
	}
	results := make([]chunkResult, len(chunks))
	var wg sync.WaitGroup
	for i := range chunks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = rt.routeChunk(ctx, name, chunks[i], pri, avail, i)
		}(i)
	}
	wg.Wait()

	kind := ""
	preds := make([]float64, 0, len(req.Instances))
	for _, res := range results {
		if res.err != nil {
			rt.chunkError(w, res)
			return
		}
		preds = append(preds, res.preds...)
		kind = res.kind
	}
	routedRequests.Inc()
	routedInstances.Add(int64(len(preds)))
	writeJSON(w, http.StatusOK, predictResponse{Model: name, Kind: kind, Predictions: preds})
}

// routeChunk scores one chunk, starting at avail[start] and failing
// over through the remaining healthy owners in order. Failover happens
// only when the replica never answered (transport error, breaker
// fast-fail) or answered 5xx; a 429 is propagated immediately — a shed
// request must never be silently retried into a different replica,
// that would convert load-shedding into load-spreading — and any other
// 4xx is the caller's bug on every replica alike.
func (rt *Router) routeChunk(ctx context.Context, name string, chunk [][]float64, pri serve.Priority, avail []*Replica, start int) chunkResult {
	var lastErr error
	for attempt := 0; attempt < len(avail); attempt++ {
		rep := avail[(start+attempt)%len(avail)]
		if attempt > 0 {
			failovers.Inc()
		}
		p, err := rep.predict(ctx, name, chunk, pri.String())
		if err == nil {
			return chunkResult{preds: p.Predictions, kind: p.Kind}
		}
		lastErr = err
		if code := client.StatusCode(err); code != 0 && code < 500 {
			// The replica answered with a client-scoped status: propagate.
			return chunkResult{code: code, err: err}
		}
		if ctx.Err() != nil {
			return chunkResult{err: ctx.Err()}
		}
	}
	return chunkResult{err: fmt.Errorf("all %d healthy replicas failed: %w", len(avail), lastErr)}
}

// chunkError maps a failed chunk onto the response: deadline → 504,
// replica-answered status (429, 4xx) → that status, everything else →
// 502 (retryable by the caller).
func (rt *Router) chunkError(w http.ResponseWriter, res chunkResult) {
	err := res.err
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		rt.deadline(w, err)
		return
	}
	if res.code != 0 {
		if res.code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, res.code, err.Error())
		return
	}
	httpError(w, http.StatusBadGateway, err.Error())
}

func (rt *Router) deadline(w http.ResponseWriter, err error) {
	routerDeadline.Inc()
	httpError(w, http.StatusGatewayTimeout, "request deadline exceeded: "+err.Error())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := obs.SnapshotJSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n')) //nolint:errcheck — nothing to do on a failed reply write
}

// splitChunks partitions instances into at most k contiguous chunks of
// near-equal size, in order. Batches smaller than spreadMin stay whole.
func splitChunks(instances [][]float64, k, spreadMin int) [][][]float64 {
	n := len(instances)
	if k <= 1 || n < spreadMin || n < k {
		return [][][]float64{instances}
	}
	chunks := make([][][]float64, 0, k)
	base, extra := n/k, n%k
	at := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		chunks = append(chunks, instances[at:at+size])
		at += size
	}
	return chunks
}

// writeJSON marshals before committing the status line (same contract
// as the single-node server: a value JSON cannot represent becomes a
// clean 500, never a 200 with an empty body).
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(map[string]string{"error": "encode response: " + err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n')) //nolint:errcheck — nothing to do on a failed reply write
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
