package cluster

import (
	"fmt"
	"testing"
)

// TestRingOwnersBasics: owner sets are deterministic, distinct, primary
// first, and clamped to the fleet.
func TestRingOwnersBasics(t *testing.T) {
	r := newRing(5, 64)
	for _, name := range []string{"a", "zoo-ridge", "fmax-gp", ""} {
		o1 := r.owners(name, 3)
		o2 := r.owners(name, 3)
		if len(o1) != 3 {
			t.Fatalf("owners(%q, 3) = %v, want 3 owners", name, o1)
		}
		if fmt.Sprint(o1) != fmt.Sprint(o2) {
			t.Fatalf("owners(%q) not deterministic: %v vs %v", name, o1, o2)
		}
		seen := map[int]bool{}
		for _, i := range o1 {
			if i < 0 || i >= 5 {
				t.Fatalf("owners(%q) = %v: replica %d out of range", name, o1, i)
			}
			if seen[i] {
				t.Fatalf("owners(%q) = %v: duplicate replica", name, o1)
			}
			seen[i] = true
		}
	}
	// Clamping: more replication than replicas yields the whole fleet.
	if got := r.owners("m", 99); len(got) != 5 {
		t.Fatalf("owners clamped to fleet: got %v", got)
	}
	if got := r.owners("m", 0); got != nil {
		t.Fatalf("owners with k=0: got %v, want nil", got)
	}
	empty := newRing(0, 64)
	if got := empty.owners("m", 2); got != nil {
		t.Fatalf("empty ring owners: got %v, want nil", got)
	}
}

// TestRingBalance: with enough vnodes, primary ownership over many
// models is roughly uniform — no replica is starved or doubly loaded.
func TestRingBalance(t *testing.T) {
	const n, models = 4, 4000
	r := newRing(n, 64)
	counts := make([]int, n)
	for i := 0; i < models; i++ {
		counts[r.owners(fmt.Sprintf("model-%d", i), 1)[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / models
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("replica %d owns %.1f%% of models (counts %v) — ring too lumpy", i, 100*frac, counts)
		}
	}
}

// TestRingStability: growing the fleet by one reassigns only a modest
// fraction of primaries — the consistent-hash property that makes
// scale-out cheap.
func TestRingStability(t *testing.T) {
	const models = 2000
	small, big := newRing(4, 64), newRing(5, 64)
	moved := 0
	for i := 0; i < models; i++ {
		name := fmt.Sprintf("model-%d", i)
		if small.owners(name, 1)[0] != big.owners(name, 1)[0] {
			moved++
		}
	}
	// Ideal is 1/5 = 20%; allow generous slack but fail the
	// modulo-hashing failure mode, which moves ~80%.
	if frac := float64(moved) / models; frac > 0.40 {
		t.Errorf("adding a 5th replica moved %.1f%% of primaries, want ~20%%", 100*frac)
	}
}

// TestSplitChunks: contiguity, ordering, near-equal sizes, and the
// SpreadMin whole-batch floor.
func TestSplitChunks(t *testing.T) {
	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	// Below SpreadMin: one chunk, untouched.
	if got := splitChunks(rows[:3], 3, 8); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("small batch split: %d chunks", len(got))
	}
	// Fewer rows than replicas: one chunk.
	if got := splitChunks(rows[:2], 3, 1); len(got) != 1 {
		t.Fatalf("n<k split: %d chunks", len(got))
	}
	// 10 rows over 3 replicas: 4/3/3, in order.
	got := splitChunks(rows, 3, 8)
	if len(got) != 3 || len(got[0]) != 4 || len(got[1]) != 3 || len(got[2]) != 3 {
		t.Fatalf("sizes: %d/%d/%d", len(got[0]), len(got[1]), len(got[2]))
	}
	i := 0
	for _, chunk := range got {
		for _, row := range chunk {
			if row[0] != float64(i) {
				t.Fatalf("row order broken at %d: %v", i, row)
			}
			i++
		}
	}
}
