package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/model"
	"repro/internal/serve"
)

// Local is the deterministic in-process cluster harness: n real
// serve.Servers, each on its own loopback listener, behind one Router
// — all in one process sharing the global obs registry. Tests and the
// chaos harness use it to run genuine multi-node traffic (real TCP,
// real HTTP, real node death) while keeping every run a pure function
// of its seed:
//
//   - Kill(i) closes replica i's listener, so the router's next attempt
//     gets a real refused connection — the same failure a crashed node
//     produces, with none of the timing noise of a child process.
//   - The router's clock is injectable (Config.Now); tests freeze it so
//     breaker transitions can't depend on wall time.
//   - LoadDirect registers a model on every owner in-process, skipping
//     the filesystem round-trip of /models/load when a test only needs
//     traffic, not rollout mechanics.
type Local struct {
	Router   *Router
	Servers  []*serve.Server
	listener []net.Listener
	httpSrv  []*http.Server

	routerLn  net.Listener
	routerSrv *http.Server

	mu     sync.Mutex
	killed []bool
}

// NewLocal boots n replica servers on loopback and a router over them.
// Replicas start unprobed (unhealthy); call ProbeAll (or hit the
// router's /readyz) to admit them. Callers own Close.
func NewLocal(n int, scfg serve.Config, ccfg Config) (*Local, error) {
	l := &Local{
		Servers:  make([]*serve.Server, n),
		listener: make([]net.Listener, n),
		httpSrv:  make([]*http.Server, n),
		killed:   make([]bool, n),
	}
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: listen replica %d: %w", i, err)
		}
		srv := serve.New(scfg)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck — Serve returns on Close, which is the plan
		l.Servers[i] = srv
		l.listener[i] = ln
		l.httpSrv[i] = hs
		bases[i] = "http://" + ln.Addr().String()
	}
	l.Router = NewRouter(ccfg, bases)
	return l, nil
}

// Serve additionally exposes the router itself over a loopback
// listener and returns its base URL, for tests that want to drive the
// whole stack through a real HTTP client (serve/client against the
// router). Idempotent.
func (l *Local) Serve() (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.routerLn != nil {
		return "http://" + l.routerLn.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("cluster: listen router: %w", err)
	}
	l.routerLn = ln
	l.routerSrv = &http.Server{Handler: l.Router.Handler()}
	go l.routerSrv.Serve(ln) //nolint:errcheck — Serve returns on Close
	return "http://" + ln.Addr().String(), nil
}

// ProbeAll admits every live replica to the serving set.
func (l *Local) ProbeAll(ctx context.Context) int { return l.Router.ProbeAll(ctx) }

// LoadDirect loads the artifact into every owner replica in-process —
// a deterministic stand-in for a completed rollout. name may be empty
// to use the artifact's own name (same contract as serve.Load).
func (l *Local) LoadDirect(name string, a *model.Artifact) error {
	key := name
	if key == "" {
		key = a.Envelope.Name
	}
	for _, oi := range l.Router.Owners(key) {
		if err := l.Servers[oi].Load(name, a); err != nil {
			return fmt.Errorf("cluster: load %q on replica %d: %w", key, oi, err)
		}
	}
	return nil
}

// Kill closes replica i's listener and server: in-flight connections
// drop and new ones are refused, exactly like a crashed node.
// Idempotent.
func (l *Local) Kill(i int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.httpSrv) || l.killed[i] {
		return
	}
	l.killed[i] = true
	if l.httpSrv[i] != nil {
		l.httpSrv[i].Close() //nolint:errcheck — already-closed is fine
	}
	if l.Servers[i] != nil {
		l.Servers[i].Close()
	}
}

// Revive re-listens replica i on a fresh port after a Kill and swaps
// the router's view of it to the new address. The replica rejoins the
// serving set at its next successful probe.
func (l *Local) Revive(i int, scfg serve.Config) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.httpSrv) || !l.killed[i] {
		return fmt.Errorf("cluster: replica %d is not killed", i)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster: re-listen replica %d: %w", i, err)
	}
	srv := serve.New(scfg)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck — Serve returns on Close
	l.Servers[i] = srv
	l.listener[i] = ln
	l.httpSrv[i] = hs
	l.killed[i] = false
	rep := l.Router.replicas[i]
	rep.Base = "http://" + ln.Addr().String()
	rep.c = newReplica(i, rep.Base, l.Router.cfg).c
	return nil
}

// Close tears the whole cluster down: router first (stop admitting),
// then every replica. Safe to call more than once.
func (l *Local) Close() {
	if l.Router != nil {
		l.Router.Close()
	}
	l.mu.Lock()
	if l.routerSrv != nil {
		l.routerSrv.Close() //nolint:errcheck — already-closed is fine
		l.routerSrv = nil
		l.routerLn = nil
	}
	l.mu.Unlock()
	for i := range l.httpSrv {
		l.Kill(i)
	}
}
