package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/modelzoo"
	"repro/internal/linalg"
	"repro/internal/model"
)

const testSeed = 7

// trainedOnce caches one model zoo across tests — training is the
// expensive part and every test wants the same reference predictions.
var (
	trainedOnce sync.Once
	trainedZoo  []modelzoo.Trained
	trainedErr  error
)

func zoo(t *testing.T) []modelzoo.Trained {
	t.Helper()
	trainedOnce.Do(func() {
		trainedZoo, trainedErr = modelzoo.TrainAll(testSeed, 48, 16)
	})
	if trainedErr != nil {
		t.Fatalf("train zoo: %v", trainedErr)
	}
	return trainedZoo
}

// newTestServer loads every zoo model into a fresh server under the
// name string(kind).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	for _, tr := range zoo(t) {
		a, err := model.Encode(tr.Model, model.Meta{Name: string(tr.Kind), Seed: testSeed})
		if err != nil {
			t.Fatalf("%s: %v", tr.Kind, err)
		}
		if err := s.Load("", a); err != nil {
			t.Fatalf("%s: %v", tr.Kind, err)
		}
	}
	return s
}

func postPredict(t *testing.T, url, name string, instances [][]float64) (int, predictResponse) {
	t.Helper()
	body, _ := json.Marshal(predictRequest{Instances: instances})
	resp, err := http.Post(url+"/predict/"+name, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /predict/%s: %v", name, err)
	}
	defer resp.Body.Close()
	var pr predictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode, pr
}

// TestBatchingDeterminism is the core serving contract: concurrent
// requests, arbitrarily regrouped into micro-batches of size 1, 4, or
// 64, produce predictions bit-identical to serial in-process scoring —
// for every model kind, on every run (this test runs under -race via
// scripts/check.sh).
func TestBatchingDeterminism(t *testing.T) {
	for _, maxBatch := range []int{1, 4, 64} {
		maxBatch := maxBatch
		t.Run(fmt.Sprintf("maxBatch=%d", maxBatch), func(t *testing.T) {
			s := newTestServer(t, Config{MaxBatch: maxBatch, MaxWait: time.Millisecond, CacheRows: 64})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			for _, tr := range zoo(t) {
				tr := tr
				t.Run(string(tr.Kind), func(t *testing.T) {
					// One goroutine per probe: maximal interleaving, so
					// batches form from unrelated requests.
					got := make([]float64, tr.Probes.Rows)
					var wg sync.WaitGroup
					errs := make(chan error, tr.Probes.Rows)
					for i := 0; i < tr.Probes.Rows; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							body, _ := json.Marshal(predictRequest{Instances: [][]float64{tr.Probes.Row(i)}})
							resp, err := http.Post(ts.URL+"/predict/"+string(tr.Kind), "application/json", bytes.NewReader(body))
							if err != nil {
								errs <- err
								return
							}
							defer resp.Body.Close()
							if resp.StatusCode != http.StatusOK {
								errs <- fmt.Errorf("probe %d: status %d", i, resp.StatusCode)
								return
							}
							var pr predictResponse
							if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
								errs <- err
								return
							}
							got[i] = pr.Predictions[0]
						}(i)
					}
					wg.Wait()
					close(errs)
					for err := range errs {
						t.Fatal(err)
					}
					for i := range got {
						if got[i] != tr.Want[i] {
							t.Fatalf("probe %d: HTTP(batch<=%d) = %v, serial in-process = %v",
								i, maxBatch, got[i], tr.Want[i])
						}
					}
				})
			}
		})
	}
}

// TestMultiInstanceRequest: one request carrying the whole probe set
// must score bit-identically too (instances batch with each other).
func TestMultiInstanceRequest(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 8, MaxWait: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, tr := range zoo(t) {
		instances := make([][]float64, tr.Probes.Rows)
		for i := range instances {
			instances[i] = tr.Probes.Row(i)
		}
		status, pr := postPredict(t, ts.URL, string(tr.Kind), instances)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", tr.Kind, status)
		}
		if pr.Kind != string(tr.Kind) {
			t.Fatalf("kind = %q, want %q", pr.Kind, tr.Kind)
		}
		for i, got := range pr.Predictions {
			if got != tr.Want[i] {
				t.Fatalf("%s probe %d: %v != %v", tr.Kind, i, got, tr.Want[i])
			}
		}
	}
}

// TestRowCacheLRU unit-tests the kernel-row cache: hits, misses,
// least-recently-used eviction, and the bit-exact key.
func TestRowCacheLRU(t *testing.T) {
	c := newRowCache(2)
	k1, k2, k3 := rowKey([]float64{1}), rowKey([]float64{2}), rowKey([]float64{3})
	c.put(k1, []float64{10})
	c.put(k2, []float64{20})
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 evicted too early")
	}
	c.put(k3, []float64{30}) // evicts k2: k1 was touched more recently
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if rowKey([]float64{1, 2}) == rowKey([]float64{2, 1}) {
		t.Fatal("rowKey must distinguish element order")
	}
	// +0 and -0 are distinct bit patterns — the key is bit-exact by design.
	if rowKey([]float64{0.0}) == rowKey([]float64{math.Copysign(0, -1)}) {
		t.Fatal("rowKey must be bit-exact, not value-based")
	}
	var nilCache *rowCache
	if _, ok := nilCache.get(k1); ok {
		t.Fatal("nil cache must miss")
	}
	nilCache.put(k1, nil) // must not panic
}

// TestCacheDoesNotChangePredictions scores the same probes twice: the
// second pass is served from the cache and must be bit-identical.
func TestCacheDoesNotChangePredictions(t *testing.T) {
	for _, tr := range zoo(t) {
		if tr.Kind != model.KindSVC {
			continue
		}
		a, err := model.Encode(tr.Model, model.Meta{Name: "svc"})
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{MaxBatch: 4, CacheRows: tr.Probes.Rows})
		defer s.Close()
		if err := s.Load("", a); err != nil {
			t.Fatal(err)
		}
		sm := s.model("svc")
		if sm.cache == nil {
			t.Fatal("kernel model should have a row cache")
		}
		first, err := sm.scoreBatch(context.Background(), tr.Probes)
		if err != nil {
			t.Fatal(err)
		}
		if sm.cache.len() == 0 {
			t.Fatal("cache stayed empty after scoring")
		}
		second, err := sm.scoreBatch(context.Background(), tr.Probes) // all hits
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i] != second[i] || first[i] != tr.Want[i] {
				t.Fatalf("probe %d: uncached %v, cached %v, want %v", i, first[i], second[i], tr.Want[i])
			}
		}
	}
}

// TestBackpressure429: with the in-flight counter full, predict
// requests are rejected with 429 instead of queueing without bound.
func TestBackpressure429(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.adm.inflight.Store(1) // occupy the only slot
	status, _ := postPredict(t, ts.URL, "ridge", [][]float64{make([]float64, 8)})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	s.adm.inflight.Store(0)
	status, _ = postPredict(t, ts.URL, "ridge", [][]float64{make([]float64, 8)})
	if status != http.StatusOK {
		t.Fatalf("after releasing the slot: status = %d, want 200", status)
	}
}

// TestReadyzLifecycle: 503 with no models, 200 once loaded, 503 again
// when draining (healthz stays 200 throughout — the process is up).
func TestReadyzLifecycle(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("empty server /readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}

	tr := zoo(t)[0]
	a, err := model.Encode(tr.Model, model.Meta{Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load("", a); err != nil {
		t.Fatal(err)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("loaded server /readyz = %d, want 200", got)
	}

	s.StartDraining()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining server /readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200", got)
	}
	status, _ := postPredict(t, ts.URL, "m", [][]float64{make([]float64, 16)})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining predict = %d, want 503", status)
	}
}

// TestHotLoad: POST /models/load registers an artifact file on a
// running server; the model serves immediately and /models lists it.
func TestHotLoad(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := zoo(t)[2] // ridge
	dir := t.TempDir()
	path := modelzoo.ArtifactFile(dir, tr.Kind)
	if _, err := model.Save(path, tr.Model, model.Meta{Name: "hot", Seed: testSeed}); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(loadRequest{Path: path})
	resp, err := http.Post(ts.URL+"/models/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/models/load status = %d", resp.StatusCode)
	}

	status, pr := postPredict(t, ts.URL, "hot", [][]float64{tr.Probes.Row(0)})
	if status != http.StatusOK {
		t.Fatalf("predict after hot load: status %d", status)
	}
	if pr.Predictions[0] != tr.Want[0] {
		t.Fatalf("hot-loaded prediction %v != in-process %v", pr.Predictions[0], tr.Want[0])
	}

	mresp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var infos []modelInfo
	if err := json.NewDecoder(mresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "hot" || infos[0].Kind != string(tr.Kind) {
		t.Fatalf("/models = %+v", infos)
	}

	// Loading a missing file fails without disturbing the registry.
	body, _ = json.Marshal(loadRequest{Path: path + ".missing"})
	resp2, err := http.Post(ts.URL+"/models/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("loading a missing file: status %d, want 422", resp2.StatusCode)
	}
}

// TestPredictValidation covers the request-rejection paths.
func TestPredictValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _ := postPredict(t, ts.URL, "nope", [][]float64{{1}}); status != http.StatusNotFound {
		t.Fatalf("unknown model: %d, want 404", status)
	}
	if status, _ := postPredict(t, ts.URL, "ridge", [][]float64{{1, 2}}); status != http.StatusBadRequest {
		t.Fatalf("narrow instance: %d, want 400", status)
	}
	if status, _ := postPredict(t, ts.URL, "ridge", nil); status != http.StatusBadRequest {
		t.Fatalf("no instances: %d, want 400", status)
	}
	resp, err := http.Get(ts.URL + "/predict/ridge")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: %d, want 405", resp.StatusCode)
	}
}

// TestBatcherDrain: every request accepted before close is answered;
// requests after close get ErrDraining.
func TestBatcherDrain(t *testing.T) {
	score := func(_ context.Context, x *linalg.Matrix) ([]float64, error) {
		time.Sleep(time.Millisecond) // let requests pile up behind a batch
		out := make([]float64, x.Rows)
		for i := range out {
			out[i] = x.Row(i)[0] * 2
		}
		return out, nil
	}
	b := newBatcher(score, 1, 4, 50*time.Millisecond)
	const n = 32
	chans := make([]<-chan batchResponse, n)
	for i := 0; i < n; i++ {
		ch, err := b.submit(context.Background(), []float64{float64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	b.close()
	for i, ch := range chans {
		resp := <-ch
		if resp.err != nil {
			t.Fatalf("request %d accepted before close got error: %v", i, resp.err)
		}
		if resp.value != float64(i)*2 {
			t.Fatalf("request %d: %v, want %v", i, resp.value, float64(i)*2)
		}
	}
	if _, err := b.submit(context.Background(), []float64{1}); err != ErrDraining {
		t.Fatalf("submit after close: %v, want ErrDraining", err)
	}
	b.close() // idempotent
}

// TestBatcherPanicRecovery: a scoring panic becomes a per-request error
// and the batcher keeps serving.
func TestBatcherPanicRecovery(t *testing.T) {
	calls := 0
	score := func(_ context.Context, x *linalg.Matrix) ([]float64, error) {
		calls++
		if calls == 1 {
			panic("boom")
		}
		return make([]float64, x.Rows), nil
	}
	b := newBatcher(score, 1, 1, time.Millisecond)
	defer b.close()
	ch, err := b.submit(context.Background(), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if resp := <-ch; resp.err == nil {
		t.Fatal("panic was not surfaced as an error")
	}
	ch, err = b.submit(context.Background(), []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if resp := <-ch; resp.err != nil {
		t.Fatalf("batcher died after a panic: %v", resp.err)
	}
}
