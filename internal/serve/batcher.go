package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Micro-batching metrics: how many batches were assembled, their size
// distribution, and how long a request waited in the queue before its
// batch was scored.
var (
	batchesFormed = obs.GetCounter("serve.batches")
	batchSizeHist = obs.GetHistogram("serve.batch_size")
	queueWaitHist = obs.GetHistogram("serve.queue_wait_ns")
)

// ErrDraining is returned to requests that arrive after the server
// started shutting down.
var ErrDraining = errors.New("serve: server is draining")

// scoreFunc scores every row of x. It must be bit-identical to scoring
// the rows one at a time (the repo-wide determinism contract).
type scoreFunc func(x *linalg.Matrix) []float64

// batchRequest is one sample waiting to be scored.
type batchRequest struct {
	x        []float64
	enqueued time.Time
	out      chan batchResponse
}

type batchResponse struct {
	value float64
	err   error
}

// batcher is the micro-batching queue in front of one served model. A
// single goroutine drains the queue: it blocks for the first request,
// then gathers more until the batch is full (maxBatch) or the oldest
// request has waited maxWait, scores the whole batch through one
// scoreFunc call — amortizing kernel/Gram evaluation across concurrent
// requests — and delivers each result to its caller.
//
// Batching changes only the grouping of work, never the arithmetic:
// scoreFunc is bit-identical per row regardless of batch composition,
// so a request's answer does not depend on which requests it shares a
// batch with (asserted by TestBatchingDeterminism).
type batcher struct {
	score    scoreFunc
	dim      int
	maxBatch int
	maxWait  time.Duration
	queue    chan *batchRequest

	// mu serializes submit against close: a submit that passed the
	// closed check is guaranteed to finish its enqueue before close()
	// signals the run loop, so every accepted request is answered.
	mu     sync.RWMutex
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

func newBatcher(score scoreFunc, dim, maxBatch int, maxWait time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &batcher{
		score:    score,
		dim:      dim,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		queue:    make(chan *batchRequest, 4*maxBatch),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues one sample and returns the channel its result will
// arrive on. The caller must have validated the sample's width.
func (b *batcher) submit(x []float64) (<-chan batchResponse, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrDraining
	}
	req := &batchRequest{x: x, enqueued: time.Now(), out: make(chan batchResponse, 1)}
	// May block when the queue is full; the run loop keeps consuming
	// until close() is signaled, and close() cannot be signaled while
	// this RLock is held.
	b.queue <- req
	return req.out, nil
}

// run is the batcher goroutine. On shutdown it keeps scoring until the
// queue is empty, so every accepted request gets an answer.
func (b *batcher) run() {
	defer close(b.done)
	for {
		var first *batchRequest
		select {
		case first = <-b.queue:
		case <-b.stop:
			// Drain: score whatever is still queued, then exit.
			select {
			case first = <-b.queue:
			default:
				return
			}
		}
		batch := b.gather(first)
		b.flush(batch)
	}
}

// gather collects requests after first until the batch is full or the
// wait budget (measured from first's arrival) expires.
func (b *batcher) gather(first *batchRequest) []*batchRequest {
	batch := []*batchRequest{first}
	if b.maxBatch == 1 {
		return batch
	}
	deadline := time.NewTimer(b.maxWait)
	defer deadline.Stop()
	for len(batch) < b.maxBatch {
		select {
		case req := <-b.queue:
			batch = append(batch, req)
		case <-deadline.C:
			return batch
		case <-b.stop:
			// Draining: take what is immediately available, don't wait.
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.queue:
					batch = append(batch, req)
				default:
					return batch
				}
			}
			return batch
		}
	}
	return batch
}

// flush scores one batch and delivers the per-request results.
func (b *batcher) flush(batch []*batchRequest) {
	now := time.Now()
	x := linalg.NewMatrix(len(batch), b.dim)
	for i, req := range batch {
		copy(x.Row(i), req.x)
		queueWaitHist.ObserveDuration(now.Sub(req.enqueued))
	}
	batchesFormed.Inc()
	batchSizeHist.Observe(int64(len(batch)))
	values, err := scoreSafely(b.score, x)
	for i, req := range batch {
		if err != nil {
			req.out <- batchResponse{err: err}
		} else {
			req.out <- batchResponse{value: values[i]}
		}
	}
}

// scoreSafely converts a scoring panic (e.g. a malformed model) into an
// error so one bad batch cannot take down the serving loop.
func scoreSafely(score scoreFunc, x *linalg.Matrix) (values []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("serve: scoring panic: " + toString(r))
		}
	}()
	return score(x), nil
}

func toString(r any) string {
	if e, ok := r.(error); ok {
		return e.Error()
	}
	if s, ok := r.(string); ok {
		return s
	}
	return "unknown panic"
}

// close stops accepting new requests, waits for the queue to drain, and
// returns once the batcher goroutine has exited. Safe to call once.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}
