package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Micro-batching metrics: how many batches were assembled, their size
// distribution, and how long a request waited in the queue before its
// batch was scored.
var (
	batchesFormed = obs.GetCounter("serve.batches")
	batchSizeHist = obs.GetHistogram("serve.batch_size")
	queueWaitHist = obs.GetHistogram("serve.queue_wait_ns")
)

// ErrDraining is returned to requests that arrive after the server
// started shutting down.
var ErrDraining = errors.New("serve: server is draining")

// drainGrace is how long closeWithin waits after canceling the batch
// context before abandoning a scorer that ignores cancellation.
const drainGrace = 250 * time.Millisecond

// scoreFunc scores every row of x. It must be bit-identical to scoring
// the rows one at a time (the repo-wide determinism contract). The
// context carries the batch deadline: a scorer that can stall (kernel
// eval under an injected-latency chaos plan) must honor it and return
// the context's error instead of a result.
type scoreFunc func(ctx context.Context, x *linalg.Matrix) ([]float64, error)

// batchRequest is one sample waiting to be scored.
type batchRequest struct {
	ctx      context.Context
	x        []float64
	enqueued time.Time
	out      chan batchResponse
}

type batchResponse struct {
	value float64
	err   error
}

// batcher is the micro-batching queue in front of one served model. A
// single goroutine drains the queue: it blocks for the first request,
// then gathers more until the batch is full (maxBatch) or the oldest
// request has waited maxWait, scores the whole batch through one
// scoreFunc call — amortizing kernel/Gram evaluation across concurrent
// requests — and delivers each result to its caller.
//
// Batching changes only the grouping of work, never the arithmetic:
// scoreFunc is bit-identical per row regardless of batch composition,
// so a request's answer does not depend on which requests it shares a
// batch with (asserted by TestBatchingDeterminism).
type batcher struct {
	score    scoreFunc
	dim      int
	maxBatch int
	maxWait  time.Duration
	queue    chan *batchRequest

	// baseCtx is the root of every batch's scoring context; cancel is
	// the drain hammer — closeWithin fires it when the queue refuses to
	// empty within the deadline, aborting any context-honoring stall.
	baseCtx context.Context
	cancel  context.CancelFunc

	// mu serializes submit against close: a submit that passed the
	// closed check is guaranteed to finish its enqueue before close()
	// signals the run loop, so every accepted request is answered.
	mu     sync.RWMutex
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

func newBatcher(score scoreFunc, dim, maxBatch int, maxWait time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &batcher{
		score:    score,
		dim:      dim,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		queue:    make(chan *batchRequest, 4*maxBatch),
		baseCtx:  ctx,
		cancel:   cancel,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues one sample and returns the channel its result will
// arrive on. The caller must have validated the sample's width. A
// canceled/expired ctx aborts the enqueue (and, via the batch deadline,
// bounds the scoring the request participates in).
func (b *batcher) submit(ctx context.Context, x []float64) (<-chan batchResponse, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := &batchRequest{ctx: ctx, x: x, enqueued: time.Now(), out: make(chan batchResponse, 1)}
	// May block when the queue is full; the run loop keeps consuming
	// until close() is signaled, and close() cannot be signaled while
	// this RLock is held. The ctx arm keeps a full queue from holding a
	// deadlined request hostage.
	select {
	case b.queue <- req:
		return req.out, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run is the batcher goroutine. On shutdown it keeps scoring until the
// queue is empty, so every accepted request gets an answer.
func (b *batcher) run() {
	defer close(b.done)
	for {
		var first *batchRequest
		select {
		case first = <-b.queue:
		case <-b.stop:
			// Drain: score whatever is still queued, then exit.
			select {
			case first = <-b.queue:
			default:
				return
			}
		}
		batch := b.gather(first)
		b.flush(batch)
	}
}

// gather collects requests after first until the batch is full or the
// wait budget (measured from first's arrival) expires.
func (b *batcher) gather(first *batchRequest) []*batchRequest {
	batch := []*batchRequest{first}
	if b.maxBatch == 1 {
		return batch
	}
	deadline := time.NewTimer(b.maxWait)
	defer deadline.Stop()
	for len(batch) < b.maxBatch {
		select {
		case req := <-b.queue:
			batch = append(batch, req)
		case <-deadline.C:
			return batch
		case <-b.stop:
			// Draining: take what is immediately available, don't wait.
			for len(batch) < b.maxBatch {
				select {
				case req := <-b.queue:
					batch = append(batch, req)
				default:
					return batch
				}
			}
			return batch
		}
	}
	return batch
}

// flush scores one batch and delivers the per-request results. The
// scoring context descends from the batcher's base context (so a forced
// drain can abort it) and, when every member carries a deadline, expires
// at the latest one — scoring for a batch never outlives the last
// caller still waiting for it.
func (b *batcher) flush(batch []*batchRequest) {
	now := time.Now()
	x := linalg.NewMatrix(len(batch), b.dim)
	latest := time.Time{}
	allDeadlined := true
	for i, req := range batch {
		copy(x.Row(i), req.x)
		queueWaitHist.ObserveDuration(now.Sub(req.enqueued))
		if d, ok := req.ctx.Deadline(); ok {
			if d.After(latest) {
				latest = d
			}
		} else {
			allDeadlined = false
		}
	}
	ctx := b.baseCtx
	if allDeadlined {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(b.baseCtx, latest)
		defer cancel()
	}
	batchesFormed.Inc()
	batchSizeHist.Observe(int64(len(batch)))
	values, err := scoreSafely(ctx, b.score, x)
	for i, req := range batch {
		if err != nil {
			req.out <- batchResponse{err: err}
		} else {
			req.out <- batchResponse{value: values[i]}
		}
	}
}

// scoreSafely converts a scoring panic (e.g. a malformed model) into an
// error so one bad batch cannot take down the serving loop.
func scoreSafely(ctx context.Context, score scoreFunc, x *linalg.Matrix) (values []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			values, err = nil, errors.New("serve: scoring panic: "+toString(r))
		}
	}()
	return score(ctx, x)
}

func toString(r any) string {
	if e, ok := r.(error); ok {
		return e.Error()
	}
	if s, ok := r.(string); ok {
		return s
	}
	return "unknown panic"
}

// close stops accepting new requests, waits for the queue to drain, and
// returns once the batcher goroutine has exited. Safe to call more than
// once. Unbounded — callers with a shutdown deadline use closeWithin.
func (b *batcher) close() {
	b.beginClose()
	<-b.done
}

// closeWithin is close with a deadline: it gives the run loop d to
// drain normally, then cancels the batch context to abort any
// context-honoring stall (injected latency, slow kernel eval), and
// finally — if the scorer ignores cancellation too — abandons the
// goroutine so shutdown always completes. Returns false only on that
// last resort.
func (b *batcher) closeWithin(d time.Duration) bool {
	b.beginClose()
	if d <= 0 {
		<-b.done
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-b.done:
		return true
	case <-timer.C:
	}
	// Deadline passed: abort in-flight scoring through the context.
	b.cancel()
	grace := time.NewTimer(drainGrace)
	defer grace.Stop()
	select {
	case <-b.done:
		return true
	case <-grace.C:
		// A truly stalled scorer (blocked outside the context). The
		// goroutine is abandoned; every queued request already holds a
		// buffered reply channel, so nothing else blocks on it.
		return false
	}
}

func (b *batcher) beginClose() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.stop)
	}
	b.mu.Unlock()
}
