// Package serve is the batched HTTP inference layer over the versioned
// model artifacts of internal/model: the ROADMAP's "production-scale
// system serving heavy traffic" path for every model family the paper
// surveys.
//
// Architecture (net/http only, no external dependencies):
//
//   - A model registry maps names to loaded artifacts. Models load at
//     boot (cmd/edaserved -model) and hot-load at runtime
//     (POST /models/load), so a freshly trained artifact can enter a
//     running fleet without a restart.
//   - A micro-batching queue per model (see batcher.go) gathers
//     concurrent single-sample requests into one scoring call, which
//     amortizes kernel/Gram evaluation through internal/parallel. Knobs:
//     max batch size and max queue wait.
//   - A bounded kernel-row LRU per kernel model (see cache.go) reuses
//     k(x, SV_*) rows across repeated inputs.
//   - Bounded in-flight concurrency with priority-aware load shedding:
//     predict requests declare a priority via the X-Priority header
//     (low | normal | high) and each tier sheds (429) at its own slice
//     of MaxInFlight — low at 50%, normal at 90%, high only at 100% —
//     so overload sacrifices the least-important traffic first.
//     /healthz and /readyz never pass through the shedder: probes stay
//     fast and truthful under full load.
//   - Per-request deadlines (Config.RequestTimeout): the request
//     context propagates into the batcher and down to kernel eval, and
//     an expired deadline returns 504 instead of holding a connection.
//   - Panic isolation: a recovery middleware turns any handler panic
//     into a 500 plus a serve.panics_recovered counter increment — one
//     poisoned request cannot take down the process.
//   - Fault-injection sites (internal/fault) at kernel evaluation and
//     request decoding, so chaos tests can drive errors, latency, and
//     corruption through the full stack deterministically.
//   - /healthz (process up) and /readyz (models loaded, not draining),
//     per-endpoint latency histograms and counters through internal/obs
//     (exported at /metrics), and graceful drain on shutdown: readiness
//     flips first, in-flight requests finish within Config.DrainTimeout
//     (a stalled queue is context-canceled, then abandoned), so SIGTERM
//     always exits within the deadline.
//
// The serving layer inherits the repository's determinism contract:
// batching, caching, and concurrency change only the grouping of work,
// never the arithmetic, so an HTTP prediction is bit-identical to
// calling the model in-process (asserted end-to-end by serve_e2e_test).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Registry and request metrics. Per-endpoint counters and latency
// histograms are minted by the handler wrapper under
// serve.<endpoint>.requests / serve.<endpoint>.latency_ns.
var (
	modelsLoaded = obs.GetGauge("serve.models_loaded")
	instances    = obs.GetCounter("serve.instances_scored")
	cacheHits    = obs.GetCounter("serve.kernel_row_cache_hits")
	cacheMisses  = obs.GetCounter("serve.kernel_row_cache_misses")

	// Compiled approx-linear models (see model.CompileApprox): how many
	// are currently registered, and how many instances took the O(d)
	// fast path that skips the kernel expansion and the row LRU.
	approxCompiled = obs.GetGauge("approx.compiled_models")
	approxFastPath = obs.GetCounter("approx.fast_path_hits")

	panicsRecovered  = obs.GetCounter("serve.panics_recovered")
	deadlineExceeded = obs.GetCounter("serve.deadline_exceeded")
)

// MaxRequestBytes caps a predict request body. Far beyond any
// legitimate batch, small enough that a hostile body is a 413, not an
// allocation storm.
const MaxRequestBytes = 32 << 20

// Config controls the serving behavior.
type Config struct {
	// MaxBatch is the micro-batch size cap per model; 1 disables
	// batching. Default 16.
	MaxBatch int
	// MaxWait is how long the batcher holds an incomplete batch open
	// waiting for more requests. Default 2ms.
	MaxWait time.Duration
	// MaxInFlight bounds concurrently served predict requests; excess
	// requests get 429, lowest priority first (low tier sheds at 50% of
	// the bound, normal at 90%, high at 100%). Default 256.
	MaxInFlight int
	// CacheRows is the kernel-row LRU capacity per kernel model; 0
	// disables the cache. Default 1024.
	CacheRows int
	// RequestTimeout is the per-request deadline for predict requests:
	// the request context (and through it the batcher and kernel eval)
	// is canceled when it expires, and the caller gets 504. Zero
	// disables the deadline.
	RequestTimeout time.Duration
	// DrainTimeout bounds Close: each model queue gets this long to
	// drain normally before its scoring context is canceled (and, as a
	// last resort against a scorer that ignores cancellation, the queue
	// goroutine abandoned). Default 5s.
	DrainTimeout time.Duration
}

func (c *Config) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.CacheRows < 0 {
		c.CacheRows = 0
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
}

// servedModel is one registry entry: the artifact, its scorer, the
// micro-batching queue in front of it, and the kernel-row cache.
type servedModel struct {
	name     string
	artifact *model.Artifact
	scorer   model.Scorer
	batcher  *batcher
	cache    *rowCache
	kx       *model.KernelExpansion // nil for non-kernel kinds
	compiled bool                   // approx-linear payload: O(d) fast path
}

// Server is the inference server. Create with New, register models with
// Load/LoadFile, mount Handler, and call Close to drain.
type Server struct {
	cfg Config
	adm *Admission

	mu     sync.RWMutex
	models map[string]*servedModel

	draining atomic.Bool
	closed   atomic.Bool
}

// New returns a server with no models loaded.
func New(cfg Config) *Server {
	cfg.defaults()
	return &Server{
		cfg:    cfg,
		adm:    NewAdmission("serve", cfg.MaxInFlight),
		models: make(map[string]*servedModel),
	}
}

// Load registers an artifact under name (the artifact's own name when
// empty), replacing any model already registered under it. The replaced
// model's queue is drained in the background.
func (s *Server) Load(name string, a *model.Artifact) error {
	if name == "" {
		name = a.Envelope.Name
	}
	if name == "" {
		return errors.New("serve: model has no name; pass one explicitly")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	scorer, err := a.Scorer()
	if err != nil {
		return err
	}
	sm := &servedModel{name: name, artifact: a, scorer: scorer}
	_, sm.compiled = a.Model.(*model.ApproxModel)
	if kx, ok := a.KernelExpansion(); ok {
		sm.kx = kx
		sm.cache = newRowCache(s.cfg.CacheRows)
	}
	sm.batcher = newBatcher(sm.scoreBatch, scorer.Dim(), s.cfg.MaxBatch, s.cfg.MaxWait)

	s.mu.Lock()
	old := s.models[name]
	s.models[name] = sm
	modelsLoaded.Set(int64(len(s.models)))
	compiled := int64(0)
	for _, m := range s.models {
		if m.compiled {
			compiled++
		}
	}
	approxCompiled.Set(compiled)
	s.mu.Unlock()
	if old != nil {
		// Drain the replaced model's queue, then drop its cached kernel
		// rows: they were computed against the old basis and must never
		// survive the reload (a request still holding the old entry keeps
		// scoring consistently — the cache only memoizes that model's own
		// pure kernel — but nothing may hit those rows afterwards).
		go func() {
			old.batcher.closeWithin(s.cfg.DrainTimeout)
			old.cache.purge()
		}()
	}
	return nil
}

// LoadFile loads the artifact at path and registers it.
func (s *Server) LoadFile(path, name string) (*model.Artifact, error) {
	a, err := model.Load(path)
	if err != nil {
		return nil, err
	}
	if err := s.Load(name, a); err != nil {
		return nil, err
	}
	return a, nil
}

// Models returns the registered model names, sorted.
func (s *Server) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Server) model(name string) *servedModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.models[name]
}

// scoreBatch scores one micro-batch. Kernel models route through the
// row cache: cached rows are reused, missing rows are evaluated in one
// parallel sweep, and every score is combined in request order by the
// model's own serial accumulation — bit-identical to the uncached path.
// The fault.SiteKernelEval injection site sits at the front: an
// injected error fails the batch, an injected delay stalls it under the
// batch context, so drain and request deadlines stay enforceable.
func (sm *servedModel) scoreBatch(ctx context.Context, x *linalg.Matrix) ([]float64, error) {
	if o := fault.Check(fault.SiteKernelEval); o.Err != nil || o.Delay > 0 {
		if err := o.Wait(ctx); err != nil {
			return nil, err
		}
		if o.Err != nil {
			return nil, o.Err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sm.kx == nil || sm.cache == nil {
		// The response slice is the only allocation: the scorer's Into
		// path runs on pooled columnar scratch, so a steady-state batch
		// costs O(1) allocations regardless of basis size.
		if sm.compiled {
			approxFastPath.Add(int64(x.Rows))
		}
		return sm.scorer.ScoreBatchInto(x, make([]float64, x.Rows)), nil
	}
	n := x.Rows
	rows := make([][]float64, n)
	var missIdx []int
	var hits, misses int64
	for i := 0; i < n; i++ {
		if row, ok := sm.cache.get(rowKey(x.Row(i))); ok {
			rows[i] = row
			hits++
		} else {
			missIdx = append(missIdx, i)
			misses++
		}
	}
	cacheHits.Add(hits)
	cacheMisses.Add(misses)
	if len(missIdx) > 0 {
		basisRows := sm.kx.Basis.Rows
		parallel.ForN(len(missIdx), 4, func(lo, hi int) {
			for m := lo; m < hi; m++ {
				i := missIdx[m]
				row := make([]float64, basisRows)
				sm.kx.Eval(x.Row(i), row)
				rows[i] = row
			}
		})
		for _, i := range missIdx {
			sm.cache.put(rowKey(x.Row(i)), rows[i])
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = sm.kx.Combine(rows[i])
	}
	return out, nil
}

// predictRequest is the body of POST /predict/{model}.
type predictRequest struct {
	Instances [][]float64 `json:"instances"`
}

// predictResponse is the reply: predictions[i] scores instances[i].
type predictResponse struct {
	Model       string    `json:"model"`
	Kind        string    `json:"kind"`
	Predictions []float64 `json:"predictions"`
}

// modelInfo is one entry of GET /models.
type modelInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Features int    `json:"features"`
	Seed     int64  `json:"seed"`
	Revision string `json:"revision,omitempty"`
	Checksum string `json:"payload_sha256"`
}

// loadRequest is the body of POST /models/load.
type loadRequest struct {
	Path string `json:"path"`
	Name string `json:"name,omitempty"`
}

// Handler returns the server's HTTP mux:
//
//	GET  /healthz          process liveness (always 200, never shed)
//	GET  /readyz           503 until models are loaded; 503 when draining
//	GET  /models           registered models and their provenance
//	POST /models/load      hot-load an artifact file: {"path": ..., "name": ...}
//	POST /predict/{model}  score instances: {"instances": [[...], ...]}
//	GET  /metrics          deterministic obs snapshot (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.wrap("readyz", s.handleReadyz))
	mux.HandleFunc("/models", s.wrap("models", s.handleModels))
	mux.HandleFunc("/models/load", s.wrap("models_load", s.handleLoad))
	mux.HandleFunc("/predict/", s.wrap("predict", s.handlePredict))
	mux.HandleFunc("/metrics", s.wrap("metrics", s.handleMetrics))
	return mux
}

// wrap mints the per-endpoint counter and latency histogram, times
// every request through them, and isolates handler panics: a panicking
// handler answers 500 (best-effort, if nothing was written yet) and
// increments serve.panics_recovered instead of killing the process.
func (s *Server) wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	scope := obs.Scope("serve." + name)
	requests := scope.Counter("requests")
	latency := scope.Histogram("latency_ns")
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		t := latency.Start()
		defer t.Stop()
		defer func() {
			if rec := recover(); rec != nil {
				panicsRecovered.Inc()
				httpError(w, http.StatusInternalServerError, "internal panic: "+toString(rec))
			}
		}()
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.mu.RLock()
	n := len(s.models)
	s.mu.RUnlock()
	if n == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no models loaded"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "models": n})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.RLock()
	infos := make([]modelInfo, 0, len(s.models))
	for name, sm := range s.models {
		env := sm.artifact.Envelope
		infos = append(infos, modelInfo{
			Name: name, Kind: string(env.Kind), Features: env.Features,
			Seed: env.Seed, Revision: env.Revision, Checksum: env.Checksum,
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req loadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Path == "" {
		httpError(w, http.StatusBadRequest, "missing \"path\"")
		return
	}
	a, err := s.LoadFile(req.Path, req.Name)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	name := req.Name
	if name == "" {
		name = a.Envelope.Name
	}
	writeJSON(w, http.StatusOK, modelInfo{
		Name: name, Kind: string(a.Envelope.Kind), Features: a.Envelope.Features,
		Seed: a.Envelope.Seed, Revision: a.Envelope.Revision, Checksum: a.Envelope.Checksum,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Backpressure: reject rather than queue unboundedly, shedding the
	// lowest-priority tier first.
	if !s.adm.Acquire(PriorityOf(r)) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "too many in-flight requests")
		return
	}
	defer s.adm.Release()

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	name := strings.TrimPrefix(r.URL.Path, "/predict/")
	sm := s.model(name)
	if sm == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no model %q loaded", name))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", MaxRequestBytes))
			return
		}
		httpError(w, http.StatusBadRequest, "read request body: "+err.Error())
		return
	}
	// Chaos coverage of the decode boundary: injected errors surface as
	// retryable 500s, injected delays respect the request deadline, and
	// injected corruption flips body bytes so the JSON layer sees
	// hostile input (a deterministic 400, which clients must not retry).
	if o := fault.Check(fault.SitePredictDecode); o.Err != nil || o.Delay > 0 || o.Corrupt {
		if werr := o.Wait(ctx); werr != nil {
			s.deadline(w, werr)
			return
		}
		if o.Err != nil {
			httpError(w, http.StatusInternalServerError, o.Err.Error())
			return
		}
		body = o.CorruptBytes(body)
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Instances) == 0 {
		httpError(w, http.StatusBadRequest, "no instances")
		return
	}
	dim := sm.scorer.Dim()
	for i, inst := range req.Instances {
		if len(inst) < dim {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("instance %d has %d features, model %q needs %d", i, len(inst), name, dim))
			return
		}
	}

	// Enqueue every instance, then collect in order. Instances from one
	// request batch with each other and with concurrent requests.
	chans := make([]<-chan batchResponse, len(req.Instances))
	for i, inst := range req.Instances {
		ch, err := sm.batcher.submit(ctx, inst)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				s.deadline(w, err)
				return
			}
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		chans[i] = ch
	}
	preds := make([]float64, len(chans))
	for i, ch := range chans {
		var resp batchResponse
		select {
		case resp = <-ch:
		case <-ctx.Done():
			// Abandon the wait: every pending reply channel is buffered,
			// so the batcher never blocks delivering to a gone caller.
			s.deadline(w, ctx.Err())
			return
		}
		if resp.err != nil {
			if errors.Is(resp.err, context.DeadlineExceeded) || errors.Is(resp.err, context.Canceled) {
				s.deadline(w, resp.err)
				return
			}
			httpError(w, http.StatusInternalServerError, resp.err.Error())
			return
		}
		preds[i] = resp.value
	}
	instances.Add(int64(len(preds)))
	writeJSON(w, http.StatusOK, predictResponse{
		Model: name, Kind: string(sm.artifact.Envelope.Kind), Predictions: preds,
	})
}

// deadline answers 504 for a request whose deadline expired in the
// serving path and counts it.
func (s *Server) deadline(w http.ResponseWriter, err error) {
	deadlineExceeded.Inc()
	httpError(w, http.StatusGatewayTimeout, "request deadline exceeded: "+err.Error())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := obs.SnapshotJSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n')) //nolint:errcheck — nothing to do on a failed reply write
}

// StartDraining flips readiness off so load balancers stop routing here;
// requests already accepted keep being served.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Close drains every model queue and releases the registry. Each queue
// gets Config.DrainTimeout to empty; one that cannot (a stalled scorer)
// is context-canceled and, at the last resort, abandoned — Close always
// returns, so a SIGTERM handler calling it always exits. Idempotent.
func (s *Server) Close() {
	s.StartDraining()
	if s.closed.Swap(true) {
		return
	}
	s.mu.Lock()
	models := make([]*servedModel, 0, len(s.models))
	for _, sm := range s.models {
		models = append(models, sm)
	}
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, sm := range models {
		wg.Add(1)
		go func(sm *servedModel) {
			defer wg.Done()
			sm.batcher.closeWithin(s.cfg.DrainTimeout)
		}(sm)
	}
	wg.Wait()
}

// writeJSON marshals before committing the status line: a value JSON
// cannot represent (a +Inf prediction from an overflowing instance,
// found by FuzzPredictHandler) becomes a clean 500 instead of a 200
// header followed by an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(map[string]string{"error": "encode response: " + err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n')) //nolint:errcheck — nothing to do on a failed reply write
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
