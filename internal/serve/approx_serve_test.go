package serve

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/svm"
)

func synthSVC(t *testing.T, gamma float64, seed int64) *svm.SVC {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	sv := linalg.NewMatrix(12, 3)
	alpha := make([]float64, sv.Rows)
	for i := range sv.Data {
		sv.Data[i] = r.NormFloat64()
	}
	for i := range alpha {
		alpha[i] = r.NormFloat64()
	}
	return svm.RestoreSVC(kernel.RBF{Gamma: gamma}, sv, alpha, 0.1, [2]float64{-1, 1})
}

// TestHotReloadPurgesKernelRows is the stale-cache regression test:
// after /models/load replaces a model, a prediction for an input whose
// kernel row was cached under the old model must come from the new
// model — never from the old rows. The replaced entry's cache is also
// purged outright once its queue drains.
func TestHotReloadPurgesKernelRows(t *testing.T) {
	s := New(Config{MaxBatch: 1, CacheRows: 64, DrainTimeout: time.Second})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two models with the same shape but different kernels, so a stale
	// row is guaranteed to produce a different (wrong) score.
	mA := synthSVC(t, 0.5, 1)
	mB := synthSVC(t, 5.0, 1)
	x := []float64{0.3, -0.8, 0.25}
	if math.Float64bits(mA.Decision(x)) == math.Float64bits(mB.Decision(x)) {
		t.Fatal("test models agree on the probe; pick a better probe")
	}

	load := func(m *svm.SVC) {
		a, err := model.Encode(m, model.Meta{Name: "clf", Seed: testSeed})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Load("", a); err != nil {
			t.Fatal(err)
		}
	}
	load(mA)
	oldEntry := s.model("clf")
	// Prime the cache: this prediction computes and stores k(x, SV_*).
	if code, pr := postPredict(t, ts.URL, "clf", [][]float64{x}); code != 200 ||
		math.Float64bits(pr.Predictions[0]) != math.Float64bits(mA.Predict(x)) {
		t.Fatalf("priming predict: code %d, got %v want %v", code, pr.Predictions, mA.Predict(x))
	}
	if oldEntry.cache.len() == 0 {
		t.Fatal("priming predict did not populate the kernel-row cache")
	}

	load(mB)
	code, pr := postPredict(t, ts.URL, "clf", [][]float64{x})
	if code != 200 {
		t.Fatalf("post-reload predict: code %d", code)
	}
	if got, want := pr.Predictions[0], mB.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("stale-cache prediction after reload: got %v, want new model's %v (old model says %v)",
			got, want, mA.Predict(x))
	}

	// The replaced entry's rows are purged once its queue drains.
	deadline := time.Now().Add(2 * time.Second)
	for oldEntry.cache.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("replaced model's kernel-row cache was never purged")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCompiledModelSkipsCache: a compiled approx-linear model must be
// served through the plain scorer path — no kernel expansion, no row
// cache — with the approx.* observability reflecting it, and its HTTP
// predictions bit-identical to in-process scoring.
func TestCompiledModelSkipsCache(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxWait: time.Millisecond, CacheRows: 64})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	am, err := model.CompileApprox(synthSVC(t, 0.5, 3),
		model.ApproxSpec{Method: model.ApproxRFF, Dim: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := model.Encode(am, model.Meta{Name: "fast", Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load("", a); err != nil {
		t.Fatal(err)
	}
	sm := s.model("fast")
	if !sm.compiled || sm.kx != nil || sm.cache != nil {
		t.Fatalf("compiled model served with compiled=%v kx=%v cache=%v; want true,nil,nil",
			sm.compiled, sm.kx, sm.cache)
	}
	if approxCompiled.Value() < 1 {
		t.Errorf("approx.compiled_models = %d, want >= 1", approxCompiled.Value())
	}

	before := approxFastPath.Value()
	probes := [][]float64{{0.1, 0.2, 0.3}, {-1, 0.5, 2}, {0, 0, 0}}
	code, pr := postPredict(t, ts.URL, "fast", probes)
	if code != 200 {
		t.Fatalf("predict: code %d", code)
	}
	for i, p := range probes {
		if math.Float64bits(pr.Predictions[i]) != math.Float64bits(am.ScoreRow(p)) {
			t.Errorf("probe %d: HTTP %v, in-process %v", i, pr.Predictions[i], am.ScoreRow(p))
		}
	}
	if got := approxFastPath.Value() - before; got < int64(len(probes)) {
		t.Errorf("approx.fast_path_hits advanced by %d, want >= %d", got, len(probes))
	}
}
