// Package linear implements the linear model family surveyed in the paper:
// ordinary least squares (LSF), ridge regression (regularized LSF), and
// logistic regression. These are the "model estimation" learners of
// Section 2.1 — assume a hyperplane M(f1..fn) = w·f + b and estimate the
// parameters from data — and two of the five regressor families compared in
// the Fmax-prediction study ([20]).
package linear

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/parallel"
)

// Regression is a fitted linear regression model y ≈ w·x + b.
type Regression struct {
	W []float64
	B float64
}

// FitOLS fits ordinary least squares with an intercept.
func FitOLS(d *dataset.Dataset) (*Regression, error) {
	return fitRidge(d, 0)
}

// FitRidge fits L2-regularized least squares (the paper's "regularized
// LSF"): min ||Xw - y||² + lambda ||w||². The intercept is not penalized.
func FitRidge(d *dataset.Dataset, lambda float64) (*Regression, error) {
	if lambda < 0 {
		return nil, errors.New("linear: negative ridge penalty")
	}
	return fitRidge(d, lambda)
}

func fitRidge(d *dataset.Dataset, lambda float64) (*Regression, error) {
	n, p := d.Len(), d.Dim()
	if n == 0 {
		return nil, errors.New("linear: empty dataset")
	}
	// Center X and y so the intercept is estimated separately and the
	// penalty never touches it.
	xm := make([]float64, p)
	for j := 0; j < p; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += d.X.At(i, j)
		}
		xm[j] = s / float64(n)
	}
	ym := 0.0
	for _, v := range d.Y {
		ym += v
	}
	ym /= float64(n)

	// Normal equations on centered data: (XcᵀXc + lambda I) w = Xcᵀ yc.
	a := linalg.NewMatrix(p, p)
	b := make([]float64, p)
	for i := 0; i < n; i++ {
		row := d.Row(i)
		yc := d.Y[i] - ym
		for j := 0; j < p; j++ {
			xj := row[j] - xm[j]
			b[j] += xj * yc
			for k := j; k < p; k++ {
				a.Set(j, k, a.At(j, k)+xj*(row[k]-xm[k]))
			}
		}
	}
	for j := 0; j < p; j++ {
		for k := 0; k < j; k++ {
			a.Set(j, k, a.At(k, j))
		}
	}
	a.AddDiag(lambda + 1e-10) // tiny jitter keeps OLS solvable when X is thin
	w, err := linalg.SolveSPD(a, b)
	if err != nil {
		return nil, err
	}
	bIntercept := ym - linalg.Dot(w, xm)
	return &Regression{W: w, B: bIntercept}, nil
}

// Predict returns w·x + b.
func (r *Regression) Predict(x []float64) float64 {
	return linalg.Dot(r.W, x) + r.B
}

// PredictBatch returns Predict for every row of x, striping rows across
// the worker pool. Each row is scored by the same expression as Predict,
// so the result is bit-identical at any worker count.
func (r *Regression) PredictBatch(x *linalg.Matrix) []float64 {
	return r.PredictBatchInto(x, make([]float64, x.Rows))
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice
// of length x.Rows. The serial path calls the scoring loop directly —
// no closure, no goroutines — so a steady-state batch allocates nothing
// (alloc_test.go pins this at 0 allocs/op).
func (r *Regression) PredictBatchInto(x *linalg.Matrix, out []float64) []float64 {
	if len(out) != x.Rows {
		panic("linear: PredictBatchInto output length mismatch")
	}
	if parallel.Workers() <= 1 || x.Rows < batchCutover {
		r.predictRange(x, out, 0, x.Rows)
	} else {
		parallel.ForN(x.Rows, batchCutover, func(lo, hi int) {
			r.predictRange(x, out, lo, hi)
		})
	}
	return out
}

func (r *Regression) predictRange(x *linalg.Matrix, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = r.Predict(x.Row(i))
	}
}

// batchCutover keeps small prediction batches serial: a single linear or
// tree scoring pass is too cheap to amortize goroutine startup below a
// few hundred rows.
const batchCutover = 256

// Validate checks that the fitted weights and intercept are finite — the
// invariant the conformance suite asserts after every generated fit
// (including fits on adversarial inputs such as constant or duplicated
// features, which the normal-equation jitter must keep solvable).
func (r *Regression) Validate() error {
	for j, w := range r.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("linear: non-finite weight %v at %d", w, j)
		}
	}
	if math.IsNaN(r.B) || math.IsInf(r.B, 0) {
		return fmt.Errorf("linear: non-finite intercept %v", r.B)
	}
	return nil
}

// PredictAll predicts every row of d.
func (r *Regression) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = r.Predict(d.Row(i))
	}
	return out
}

// PolynomialFeatures expands a 1-D dataset into powers x, x², … x^degree.
// It powers the Figure 5 model-complexity sweep.
func PolynomialFeatures(d *dataset.Dataset, degree int) *dataset.Dataset {
	if d.Dim() != 1 {
		panic("linear: PolynomialFeatures requires 1-D input")
	}
	x := linalg.NewMatrix(d.Len(), degree)
	for i := 0; i < d.Len(); i++ {
		v := d.Row(i)[0]
		pow := 1.0
		row := x.Row(i)
		for j := 0; j < degree; j++ {
			pow *= v
			row[j] = pow
		}
	}
	return dataset.MustNew(x, d.Y, nil)
}

// Logistic is a fitted binary logistic regression classifier with classes
// {0, 1}.
type Logistic struct {
	W []float64
	B float64
}

// LogisticConfig controls the gradient-descent fit.
type LogisticConfig struct {
	LearningRate float64 // default 0.1
	Epochs       int     // default 500
	L2           float64 // optional L2 penalty
}

// FitLogistic fits binary logistic regression by full-batch gradient
// descent. Labels must be 0/1.
func FitLogistic(d *dataset.Dataset, cfg LogisticConfig) (*Logistic, error) {
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 500
	}
	n, p := d.Len(), d.Dim()
	if n == 0 {
		return nil, errors.New("linear: empty dataset")
	}
	for _, v := range d.Y {
		if v != 0 && v != 1 {
			return nil, errors.New("linear: logistic labels must be 0/1")
		}
	}
	w := make([]float64, p)
	b := 0.0
	gw := make([]float64, p)
	for ep := 0; ep < cfg.Epochs; ep++ {
		for j := range gw {
			gw[j] = 0
		}
		gb := 0.0
		for i := 0; i < n; i++ {
			row := d.Row(i)
			z := linalg.Dot(w, row) + b
			pHat := sigmoid(z)
			e := pHat - d.Y[i]
			for j := range gw {
				gw[j] += e * row[j]
			}
			gb += e
		}
		inv := 1.0 / float64(n)
		for j := range w {
			w[j] -= cfg.LearningRate * (gw[j]*inv + cfg.L2*w[j])
		}
		b -= cfg.LearningRate * gb * inv
	}
	return &Logistic{W: w, B: b}, nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Prob returns P(y=1 | x).
func (l *Logistic) Prob(x []float64) float64 {
	return sigmoid(linalg.Dot(l.W, x) + l.B)
}

// Predict returns the most likely class, 0 or 1.
func (l *Logistic) Predict(x []float64) float64 {
	if l.Prob(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictAll predicts every row of d.
func (l *Logistic) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = l.Predict(d.Row(i))
	}
	return out
}

// Perceptron is the classic mistake-driven linear classifier; it exists to
// certify linear *in*separability: on a linearly separable set it converges
// to zero training errors, on Figure 3's ring-and-core it cannot.
type Perceptron struct {
	W []float64
	B float64
}

// FitPerceptron runs at most epochs passes, returning the model and the
// number of mistakes in the final pass (0 means separated).
func FitPerceptron(d *dataset.Dataset, epochs int) (*Perceptron, int) {
	p := &Perceptron{W: make([]float64, d.Dim())}
	mistakes := 0
	for ep := 0; ep < epochs; ep++ {
		mistakes = 0
		for i := 0; i < d.Len(); i++ {
			row := d.Row(i)
			yi := 2*d.Y[i] - 1 // map {0,1} -> {-1,+1}
			if yi*(linalg.Dot(p.W, row)+p.B) <= 0 {
				mistakes++
				for j := range p.W {
					p.W[j] += yi * row[j]
				}
				p.B += yi
			}
		}
		if mistakes == 0 {
			break
		}
	}
	return p, mistakes
}

// Predict returns the class 0/1.
func (p *Perceptron) Predict(x []float64) float64 {
	if linalg.Dot(p.W, x)+p.B > 0 {
		return 1
	}
	return 0
}
