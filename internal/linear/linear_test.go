package linear

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/validate"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g want %g", msg, got, want)
	}
}

func linearData(rng *rand.Rand, n int, w []float64, b, noise float64) *dataset.Dataset {
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		row := make([]float64, len(w))
		s := b
		for j := range row {
			row[j] = rng.NormFloat64()
			s += w[j] * row[j]
		}
		rows[i] = row
		y[i] = s + noise*rng.NormFloat64()
	}
	return dataset.FromRows(rows, y)
}

func TestOLSRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := []float64{2, -1, 0.5}
	d := linearData(rng, 500, w, 3, 0.01)
	m, err := FitOLS(d)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w {
		approx(t, m.W[j], w[j], 0.01, "weight")
	}
	approx(t, m.B, 3, 0.01, "intercept")
	pred := m.PredictAll(d)
	if validate.R2(pred, d.Y) < 0.999 {
		t.Fatalf("R2 %g", validate.R2(pred, d.Y))
	}
}

func TestRidgeShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := linearData(rng, 100, []float64{5, -5}, 0, 0.5)
	ols, _ := FitOLS(d)
	ridge, err := FitRidge(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols.W {
		if math.Abs(ridge.W[j]) >= math.Abs(ols.W[j]) {
			t.Fatalf("ridge weight %d not shrunk: %g vs %g", j, ridge.W[j], ols.W[j])
		}
	}
	if _, err := FitRidge(d, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestRidgeHandlesCollinearity(t *testing.T) {
	// Duplicate feature: OLS normal equations are singular without jitter;
	// ridge must handle this cleanly.
	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	d := dataset.FromRows(rows, y)
	m, err := FitRidge(d, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m.Predict([]float64{5, 5}), 10, 0.5, "collinear prediction")
}

func TestEmptyDatasetErrors(t *testing.T) {
	d := dataset.FromRows(nil, nil)
	if _, err := FitOLS(d); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	if _, err := FitLogistic(d, LogisticConfig{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestPolynomialFeatures(t *testing.T) {
	d := dataset.FromRows([][]float64{{2}}, []float64{0})
	p := PolynomialFeatures(d, 3)
	row := p.Row(0)
	approx(t, row[0], 2, 0, "x")
	approx(t, row[1], 4, 0, "x2")
	approx(t, row[2], 8, 0, "x3")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for multi-dim input")
		}
	}()
	PolynomialFeatures(dataset.FromRows([][]float64{{1, 2}}, []float64{0}), 2)
}

func TestLogisticSeparatesGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := dataset.TwoGaussians(rng, 150, 2, 4, 1)
	m, err := FitLogistic(d, LogisticConfig{Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	acc := validate.Accuracy(m.PredictAll(d), d.Y)
	if acc < 0.95 {
		t.Fatalf("logistic accuracy %g", acc)
	}
	// Probabilities are proper.
	p := m.Prob(d.Row(0))
	if p < 0 || p > 1 {
		t.Fatalf("prob out of range: %g", p)
	}
}

func TestLogisticRejectsBadLabels(t *testing.T) {
	d := dataset.FromRows([][]float64{{1}, {2}}, []float64{0, 2})
	if _, err := FitLogistic(d, LogisticConfig{}); err == nil {
		t.Fatal("expected label validation error")
	}
}

func TestPerceptronConvergesOnSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := dataset.TwoGaussians(rng, 100, 2, 8, 0.5)
	_, mistakes := FitPerceptron(d, 100)
	if mistakes != 0 {
		t.Fatalf("perceptron did not converge on separable data: %d mistakes", mistakes)
	}
}

func TestPerceptronFailsOnRing(t *testing.T) {
	// Figure 3: ring-and-core is not linearly separable in input space.
	rng := rand.New(rand.NewSource(5))
	d := dataset.RingAndCore(rng, 100, 1, 3, 0.05)
	_, mistakes := FitPerceptron(d, 50)
	if mistakes == 0 {
		t.Fatal("perceptron should not separate ring-and-core in input space")
	}
}

func TestOverfittingCurveFig5Shape(t *testing.T) {
	// Polynomial regression on noisy sine: validation error must be
	// U-shaped while training error decreases (paper Figure 5).
	rng := rand.New(rand.NewSource(6))
	train := dataset.NoisySine(rng, 30, 0.35)
	valid := dataset.NoisySine(rng, 200, 0.35)
	trainer := func(c int, tr, ev *dataset.Dataset) ([]float64, []float64, error) {
		ptr := PolynomialFeatures(tr, c)
		pev := PolynomialFeatures(ev, c)
		m, err := FitRidge(ptr, 1e-9)
		if err != nil {
			return nil, nil, err
		}
		return m.PredictAll(ptr), m.PredictAll(pev), nil
	}
	curve, err := validate.ComplexityCurve(train, valid,
		[]int{1, 2, 3, 5, 7, 9, 12, 15, 18}, trainer, validate.MSE)
	if err != nil {
		t.Fatal(err)
	}
	// Training error at max complexity below training error at min.
	if curve[len(curve)-1].TrainErr >= curve[0].TrainErr {
		t.Fatal("training error did not decrease with complexity")
	}
	best := validate.BestComplexity(curve)
	if best <= 1 || best >= 18 {
		t.Fatalf("validation optimum should be interior, got %d", best)
	}
	if !validate.IsOverfitting(curve, 0.05) {
		t.Fatal("expected overfitting signature at high degree")
	}
}

func BenchmarkFitOLS200x10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 10)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	d := linearData(rng, 200, w, 1, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitOLS(d); err != nil {
			b.Fatal(err)
		}
	}
}
