// Package model is the repository's versioned model-artifact layer: a
// stable on-disk envelope that lets a trained model outlive the process
// that trained it.
//
// The paper's usage models (Section 5) only pay off when learned
// knowledge is durable — the novelty-detection test-selection loop
// re-scores every new constrained-random test against a model trained
// on everything already simulated, and that model must survive between
// randomizer runs. Before this package every fitted model (SVM,
// one-class SVM, ridge, GP, decision tree, CN2-SD rule set) died with
// the process; now `edamine -save-model` persists them and
// `cmd/edaserved` serves them over HTTP (see internal/serve).
//
// Artifact format (schema version 1): a single JSON file holding an
// envelope — schema version, model kind, feature count, kernel config,
// training seed, run-manifest reference, build revision, SHA-256
// payload checksum — around a kind-specific JSON payload. Design rules:
//
//  1. Fail loudly. Load rejects unknown schema versions, unknown model
//     kinds, and any payload whose SHA-256 does not match the envelope
//     checksum. A corrupt or future-versioned artifact never produces
//     a silently wrong model.
//  2. Bit-exact round trips. Payload floats are marshaled by
//     encoding/json's shortest round-trip representation, so a loaded
//     model predicts bit-identically to the one that was saved (the
//     root e2e test asserts this over HTTP for every kind).
//  3. Deterministic bytes. Saving the same model with the same
//     metadata produces byte-identical files — no timestamps, no map
//     iteration — so artifacts can be content-addressed and diffed,
//     and the committed v1 golden files stay stable forever.
package model

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/obs"
)

// SchemaVersion is the artifact schema written by Save. Load accepts
// only versions it knows how to decode.
const SchemaVersion = 1

// Kind identifies a persistable model family.
type Kind string

// The supported model kinds.
const (
	KindSVC      Kind = "svc"      // svm.SVC — kernel support vector classifier
	KindOneClass Kind = "oneclass" // svm.OneClass — novelty detector
	KindRidge    Kind = "ridge"    // linear.Regression — OLS/ridge
	KindGP       Kind = "gp"       // gp.Regressor — Gaussian-process regression
	KindTree     Kind = "tree"     // tree.Tree — CART decision tree
	KindRuleSet  Kind = "ruleset"  // rules.RuleSet — CN2-SD rule set
)

// Kinds lists every supported kind in stable order.
func Kinds() []Kind {
	return []Kind{KindSVC, KindOneClass, KindRidge, KindGP, KindTree, KindRuleSet}
}

// Sentinel errors; Load wraps them with context, match with errors.Is.
var (
	ErrSchemaVersion = errors.New("model: unsupported schema version")
	ErrChecksum      = errors.New("model: payload checksum mismatch")
	ErrKind          = errors.New("model: unknown model kind")
	ErrKernel        = errors.New("model: unsupported kernel")
	// ErrInvalid marks an artifact that parsed but describes a model the
	// scorer could not run safely: non-finite parameters, out-of-range
	// feature indices, missing tree children, absurd dimensions.
	ErrInvalid = errors.New("model: invalid payload")
	// ErrOversize marks an artifact larger than MaxArtifactBytes; Load
	// refuses it before reading, Decode before parsing.
	ErrOversize = errors.New("model: artifact exceeds size limit")
)

// MaxArtifactBytes caps artifact size. The largest legitimate artifact
// (a GP with its full Cholesky factor) is a few megabytes; 64 MiB keeps
// an order of magnitude of headroom while making "envelope the size of
// the disk" a loud typed error instead of an allocation storm.
const MaxArtifactBytes = 64 << 20

// Envelope is the stable outer layer of an artifact. Everything a
// loader must validate or a registry wants to display lives here; the
// kind-specific parameters live in Payload.
type Envelope struct {
	SchemaVersion int             `json:"schema_version"`
	Kind          Kind            `json:"kind"`
	Name          string          `json:"name,omitempty"`
	Features      int             `json:"features"`
	Kernel        *KernelSpec     `json:"kernel,omitempty"`
	Approx        *ApproxSpec     `json:"approx,omitempty"` // set on compiled approx-linear payloads
	Seed          int64           `json:"seed"`
	ManifestRef   string          `json:"manifest_ref,omitempty"`
	Revision      string          `json:"revision,omitempty"`
	Checksum      string          `json:"payload_sha256"`
	Payload       json.RawMessage `json:"payload"`
}

// Meta is the caller-supplied provenance stored in the envelope.
type Meta struct {
	Name        string // registry name, e.g. "fmax-gp"
	Seed        int64  // training seed
	ManifestRef string // path or identifier of the training run manifest
}

// Artifact is a loaded (or about-to-be-saved) model plus its envelope.
type Artifact struct {
	Envelope Envelope
	Model    any // *svm.SVC, *svm.OneClass, *linear.Regression, *gp.Regressor, *tree.Tree, or *rules.RuleSet
}

// checksum returns the hex SHA-256 of the payload in compact JSON form.
// Hashing the compacted bytes makes the checksum independent of the
// whitespace/indentation the envelope serializer applies around the
// embedded payload, while still covering every value in it.
func checksum(payload []byte) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return "", fmt.Errorf("model: compact payload: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Encode wraps a fitted model in a schema-v1 envelope. The model must
// be one of the supported kinds; kernel models must use a persistable
// kernel (see KernelSpec).
func Encode(m any, meta Meta) (*Artifact, error) {
	kind, features, kspec, payload, err := encodePayload(m)
	if err != nil {
		return nil, err
	}
	sum, err := checksum(payload)
	if err != nil {
		return nil, err
	}
	rev, _ := obs.BuildRevision()
	var aspec *ApproxSpec
	if am, ok := m.(*ApproxModel); ok {
		spec := am.Spec
		aspec = &spec
	}
	return &Artifact{
		Envelope: Envelope{
			SchemaVersion: SchemaVersion,
			Kind:          kind,
			Name:          meta.Name,
			Features:      features,
			Kernel:        kspec,
			Approx:        aspec,
			Seed:          meta.Seed,
			ManifestRef:   meta.ManifestRef,
			Revision:      rev,
			Checksum:      sum,
			Payload:       payload,
		},
		Model: m,
	}, nil
}

// Marshal renders the artifact as indented JSON. The bytes are a
// deterministic function of the model and metadata (plus the build
// revision), so identical saves are byte-identical.
func (a *Artifact) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(&a.Envelope, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("model: marshal envelope: %w", err)
	}
	return append(data, '\n'), nil
}

// Save encodes m and writes the artifact file to path.
func Save(path string, m any, meta Meta) (*Artifact, error) {
	a, err := Encode(m, meta)
	if err != nil {
		return nil, err
	}
	data, err := a.Marshal()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, fmt.Errorf("model: write artifact: %w", err)
	}
	return a, nil
}

// Decode validates an envelope and rebuilds the fitted model. It fails
// loudly — a typed error, never a panic — on oversized input, unknown
// schema versions, checksum mismatches, unknown kinds, malformed
// payloads, and payloads describing models the scorer could not run
// safely (see validate.go). The fault.SiteModelDecode injection site
// sits at the front so chaos runs can exercise every one of those
// refusal paths plus artificial decode latency.
func Decode(data []byte) (*Artifact, error) {
	if o := fault.Check(fault.SiteModelDecode); o.Err != nil || o.Delay > 0 || o.Corrupt {
		o.Wait(context.Background()) //nolint:errcheck — background ctx never cancels
		if o.Err != nil {
			return nil, o.Err
		}
		data = o.CorruptBytes(data)
	}
	if len(data) > MaxArtifactBytes {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrOversize, len(data), MaxArtifactBytes)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("model: parse envelope: %w", err)
	}
	if env.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: got %d, this build reads %d",
			ErrSchemaVersion, env.SchemaVersion, SchemaVersion)
	}
	if err := validateEnvelope(&env); err != nil {
		return nil, err
	}
	got, err := checksum(env.Payload)
	if err != nil {
		return nil, err
	}
	if got != env.Checksum {
		return nil, fmt.Errorf("%w: envelope says %s, payload hashes to %s",
			ErrChecksum, env.Checksum, got)
	}
	m, err := decodePayload(&env)
	if err != nil {
		return nil, err
	}
	if err := validateModel(m, &env); err != nil {
		return nil, err
	}
	return &Artifact{Envelope: env, Model: m}, nil
}

// Load reads and decodes the artifact file at path, refusing oversized
// files before reading them into memory.
func Load(path string) (*Artifact, error) {
	if fi, err := os.Stat(path); err == nil && fi.Size() > MaxArtifactBytes {
		return nil, fmt.Errorf("%s: %w: %d bytes > %d", path, ErrOversize, fi.Size(), MaxArtifactBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: read artifact: %w", err)
	}
	a, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
