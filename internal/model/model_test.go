package model_test

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/tree"
)

// fixtures builds one small fitted model per kind plus a probe matrix.
func fixtures(t *testing.T) map[model.Kind]struct {
	m      any
	probes *linalg.Matrix
} {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := map[model.Kind]struct {
		m      any
		probes *linalg.Matrix
	}{}

	d2 := dataset.TwoGaussians(rng, 60, 3, 2.5, 1.0)
	svc, err := svm.FitSVC(d2, kernel.RBF{Gamma: 0.7}, svm.SVCConfig{Seed: 3})
	if err != nil {
		t.Fatalf("fit svc: %v", err)
	}
	out[model.KindSVC] = struct {
		m      any
		probes *linalg.Matrix
	}{svc, dataset.TwoGaussians(rng, 20, 3, 2.5, 1.0).X}

	blob := dataset.Blobs(rng, 1, 50, 2, 0, 1.0)
	oc, err := svm.FitOneClass(blob.X, kernel.RBF{Gamma: 0.5}, svm.OneClassConfig{Nu: 0.2})
	if err != nil {
		t.Fatalf("fit oneclass: %v", err)
	}
	out[model.KindOneClass] = struct {
		m      any
		probes *linalg.Matrix
	}{oc, dataset.Blobs(rng, 1, 20, 2, 0, 2.0).X}

	fr := dataset.Friedman1(rng, 80, 6, 0.3)
	ridge, err := linear.FitRidge(fr, 0.5)
	if err != nil {
		t.Fatalf("fit ridge: %v", err)
	}
	out[model.KindRidge] = struct {
		m      any
		probes *linalg.Matrix
	}{ridge, dataset.Friedman1(rng, 20, 6, 0.3).X}

	sine := dataset.NoisySine(rng, 40, 0.1)
	gpr, err := gp.Fit(sine, gp.Config{Kernel: kernel.RBF{Gamma: 1.5}, Noise: 0.05})
	if err != nil {
		t.Fatalf("fit gp: %v", err)
	}
	out[model.KindGP] = struct {
		m      any
		probes *linalg.Matrix
	}{gpr, dataset.NoisySine(rng, 20, 0.1).X}

	xor := dataset.XOR(rng, 25, 0.3)
	tr, err := tree.Fit(xor, tree.Config{MaxDepth: 5, MinLeaf: 2})
	if err != nil {
		t.Fatalf("fit tree: %v", err)
	}
	out[model.KindTree] = struct {
		m      any
		probes *linalg.Matrix
	}{tr, dataset.XOR(rng, 6, 0.3).X}

	rset, err := rules.CN2SD(d2, 1, rules.CN2SDConfig{MaxRules: 3, MaxConditions: 2})
	if err != nil {
		t.Fatalf("cn2sd: %v", err)
	}
	out[model.KindRuleSet] = struct {
		m      any
		probes *linalg.Matrix
	}{&rules.RuleSet{Rules: rset, Target: 1, Default: 0}, d2.X}

	return out
}

// TestRoundTripAllKinds saves and loads every kind through a real file
// and asserts bit-identical predictions plus envelope integrity.
func TestRoundTripAllKinds(t *testing.T) {
	dir := t.TempDir()
	for kind, fx := range fixtures(t) {
		kind, fx := kind, fx
		t.Run(string(kind), func(t *testing.T) {
			path := filepath.Join(dir, string(kind)+".model.json")
			saved, err := model.Save(path, fx.m, model.Meta{Name: "t-" + string(kind), Seed: 99, ManifestRef: "manifest.json"})
			if err != nil {
				t.Fatalf("save: %v", err)
			}
			if saved.Envelope.Kind != kind {
				t.Fatalf("saved kind = %q, want %q", saved.Envelope.Kind, kind)
			}
			loaded, err := model.Load(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if loaded.Envelope.SchemaVersion != model.SchemaVersion {
				t.Fatalf("schema version = %d", loaded.Envelope.SchemaVersion)
			}
			if loaded.Envelope.Seed != 99 || loaded.Envelope.ManifestRef != "manifest.json" {
				t.Fatalf("metadata lost: %+v", loaded.Envelope)
			}
			if loaded.Envelope.Checksum != saved.Envelope.Checksum {
				t.Fatalf("checksum changed across save/load")
			}

			wantScorer := mustScorer(t, &model.Artifact{Envelope: saved.Envelope, Model: fx.m})
			gotScorer := mustScorer(t, loaded)
			for i := 0; i < fx.probes.Rows; i++ {
				x := fx.probes.Row(i)
				want, got := wantScorer.ScoreRow(x), gotScorer.ScoreRow(x)
				if want != got {
					t.Fatalf("probe %d: loaded model predicts %v, original %v", i, got, want)
				}
			}
			// The batch path must agree with the serial path bit for bit.
			batch := gotScorer.ScoreBatch(fx.probes)
			for i := range batch {
				if batch[i] != gotScorer.ScoreRow(fx.probes.Row(i)) {
					t.Fatalf("probe %d: batch %v != serial %v", i, batch[i], gotScorer.ScoreRow(fx.probes.Row(i)))
				}
			}
		})
	}
}

func mustScorer(t *testing.T, a *model.Artifact) model.Scorer {
	t.Helper()
	s, err := a.Scorer()
	if err != nil {
		t.Fatalf("scorer: %v", err)
	}
	return s
}

// TestSaveIsDeterministic asserts that saving the same model twice
// produces byte-identical files — the content-addressability contract.
func TestSaveIsDeterministic(t *testing.T) {
	fx := fixtures(t)[model.KindSVC]
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if _, err := model.Save(p1, fx.m, model.Meta{Name: "x", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Save(p2, fx.m, model.Meta{Name: "x", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatal("two saves of the same model differ byte-for-byte")
	}
}

// TestLoadFailsLoudly covers the three rejection paths: checksum
// mismatch, unknown schema version, unknown kind.
func TestLoadFailsLoudly(t *testing.T) {
	fx := fixtures(t)[model.KindRidge]
	art, err := model.Encode(fx.m, model.Meta{Name: "r"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := art.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tampered payload", func(t *testing.T) {
		bad := strings.Replace(string(data), `"b":`, `"b": 1e9, "zz":`, 1)
		if bad == string(data) {
			t.Fatal("tamper replacement did not apply")
		}
		_, err := model.Decode([]byte(bad))
		if !errors.Is(err, model.ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})

	t.Run("future schema version", func(t *testing.T) {
		var env map[string]any
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		env["schema_version"] = model.SchemaVersion + 1
		bad, _ := json.Marshal(env)
		_, err := model.Decode(bad)
		if !errors.Is(err, model.ErrSchemaVersion) {
			t.Fatalf("want ErrSchemaVersion, got %v", err)
		}
	})

	t.Run("unknown kind", func(t *testing.T) {
		bad := strings.Replace(string(data), `"kind": "ridge"`, `"kind": "quantum"`, 1)
		if bad == string(data) {
			t.Fatal("kind replacement did not apply")
		}
		_, err := model.Decode([]byte(bad))
		if !errors.Is(err, model.ErrKind) {
			t.Fatalf("want ErrKind, got %v", err)
		}
	})

	t.Run("garbage", func(t *testing.T) {
		if _, err := model.Decode([]byte("not json")); err == nil {
			t.Fatal("garbage decoded without error")
		}
	})
}

// TestUnsupportedKernelRejected: models over data-dependent kernels
// (the n-gram spectrum family) must fail at save time, not load time.
func TestUnsupportedKernelRejected(t *testing.T) {
	oc := &svm.OneClass{
		K:     stubKernel{},
		SV:    linalg.NewMatrix(1, 2),
		Alpha: []float64{1},
	}
	if _, err := model.Encode(oc, model.Meta{}); !errors.Is(err, model.ErrKernel) {
		t.Fatalf("want ErrKernel, got %v", err)
	}
}

type stubKernel struct{}

func (stubKernel) Eval(a, b []float64) float64 { return 0 }
func (stubKernel) Name() string                { return "stub" }

// TestKernelSpecRoundTrip covers every persistable kernel shape.
func TestKernelSpecRoundTrip(t *testing.T) {
	kernels := []kernel.Kernel{
		kernel.Linear{},
		kernel.Poly{Degree: 2, Gamma: 1, Coef0: 0.5},
		kernel.RBF{Gamma: 0.25},
		kernel.Sigmoid{Gamma: 0.1, Coef0: -1},
		kernel.HistogramIntersection{},
		kernel.Normalize{K: kernel.Poly{Degree: 3, Gamma: 2}},
	}
	a, b := []float64{0.3, 1.7}, []float64{-0.4, 0.9}
	for _, k := range kernels {
		spec, err := model.SpecOf(k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", k.Name(), err)
		}
		if !reflect.DeepEqual(k, back) {
			t.Fatalf("%s: round-trip %#v -> %#v", k.Name(), k, back)
		}
		if k.Eval(a, b) != back.Eval(a, b) {
			t.Fatalf("%s: eval differs after round-trip", k.Name())
		}
	}
	if _, err := (&model.KernelSpec{Name: "warp"}).Build(); !errors.Is(err, model.ErrKernel) {
		t.Fatalf("want ErrKernel for unknown spec, got %v", err)
	}
}

// TestEncodeRejectsUnknownType: only the six supported kinds persist.
func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := model.Encode(struct{}{}, model.Meta{}); !errors.Is(err, model.ErrKind) {
		t.Fatalf("want ErrKind, got %v", err)
	}
}
