package model

// Adversarial-artifact hardening tests (ISSUE 4): every hostile input —
// truncated, oversized, structurally forged, NaN/Inf-smuggling — must
// come back as a loud typed error, never a panic, an OOM, or a model
// that panics later at scoring time. These are the table-driven twins
// of FuzzModelDecode's exploration.

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel/approx"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/rules"
	"repro/internal/tree"
)

// forge builds an artifact whose envelope is internally consistent
// (correct schema version and checksum) around an arbitrary payload, so
// tests reach the payload-decoding and validation layers.
func forge(t testing.TB, kind Kind, features int, kspec *KernelSpec, payload string) []byte {
	return forgeApprox(t, kind, features, kspec, nil, payload)
}

// forgeApprox is forge with an approx spec in the envelope, routing the
// payload through the approx-linear decoder.
func forgeApprox(t testing.TB, kind Kind, features int, kspec *KernelSpec, aspec *ApproxSpec, payload string) []byte {
	t.Helper()
	sum, err := checksum([]byte(payload))
	if err != nil {
		t.Fatalf("forge checksum: %v", err)
	}
	env := Envelope{
		SchemaVersion: SchemaVersion,
		Kind:          kind,
		Features:      features,
		Kernel:        kspec,
		Approx:        aspec,
		Checksum:      sum,
		Payload:       json.RawMessage(payload),
	}
	data, err := json.Marshal(&env)
	if err != nil {
		t.Fatalf("forge marshal: %v", err)
	}
	return data
}

func rbfSpec() *KernelSpec { return &KernelSpec{Name: "rbf", Gamma: 0.5} }

// TestDecodeRejectsForgedArtifacts: structural attacks on every kind.
func TestDecodeRejectsForgedArtifacts(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"truncated envelope", []byte(`{"schema_version": 1, "kind": "ridge"`), nil},
		{"empty input", nil, nil},
		{"not json at all", []byte("\x00\x01\x02 not json"), nil},
		{"negative features",
			forge(t, KindRidge, -1, nil, `{"w": [1], "b": 0}`), ErrInvalid},
		{"absurd features",
			forge(t, KindRidge, MaxFeatures+1, nil, `{"w": [1], "b": 0}`), ErrInvalid},
		{"ridge width lies about envelope features",
			forge(t, KindRidge, 8, nil, `{"w": [1, 2], "b": 0}`), ErrInvalid},
		{"tree with missing child",
			forge(t, KindTree, 2, nil,
				`{"max_depth": 2, "min_leaf": 1, "root": {"feature": 0, "threshold": 1, "left": {"leaf": true, "value": 1}}}`),
			ErrInvalid},
		{"tree splits out-of-range feature",
			forge(t, KindTree, 2, nil,
				`{"max_depth": 2, "min_leaf": 1, "root": {"feature": 7, "threshold": 1, "left": {"leaf": true, "value": 0}, "right": {"leaf": true, "value": 1}}}`),
			ErrInvalid},
		{"tree splits negative feature",
			forge(t, KindTree, 2, nil,
				`{"max_depth": 2, "min_leaf": 1, "root": {"feature": -3, "threshold": 1, "left": {"leaf": true, "value": 0}, "right": {"leaf": true, "value": 1}}}`),
			ErrInvalid},
		{"tree with no root",
			forge(t, KindTree, 2, nil, `{"max_depth": 2, "min_leaf": 1}`), ErrInvalid},
		{"ruleset condition indexes past envelope width",
			forge(t, KindRuleSet, 2, nil,
				`{"rules": [{"conditions": [{"feature": 5, "op": 0, "threshold": 1}], "class": 1}], "target": 1, "default": 0}`),
			ErrInvalid},
		{"ruleset negative feature",
			forge(t, KindRuleSet, 2, nil,
				`{"rules": [{"conditions": [{"feature": -1, "op": 0, "threshold": 1}], "class": 1}], "target": 1, "default": 0}`),
			ErrInvalid},
		{"ruleset unknown op",
			forge(t, KindRuleSet, 2, nil,
				`{"rules": [{"conditions": [{"feature": 0, "op": 9, "threshold": 1}], "class": 1}], "target": 1, "default": 0}`),
			ErrInvalid},
		{"svc alpha/sv mismatch",
			forge(t, KindSVC, 2, rbfSpec(),
				`{"sv": {"rows": 2, "cols": 2, "data": [1, 2, 3, 4]}, "alpha": [1], "b": 0, "classes": [-1, 1]}`),
			ErrInvalid},
		{"svc width lies about envelope features",
			forge(t, KindSVC, 5, rbfSpec(),
				`{"sv": {"rows": 1, "cols": 2, "data": [1, 2]}, "alpha": [1], "b": 0, "classes": [-1, 1]}`),
			ErrInvalid},
		{"matrix shape overflow",
			forge(t, KindSVC, 2, rbfSpec(),
				`{"sv": {"rows": 2147483648, "cols": 8589934592, "data": []}, "alpha": [], "b": 0, "classes": [-1, 1]}`),
			ErrInvalid},
		{"matrix shape mismatch",
			forge(t, KindOneClass, 2, rbfSpec(),
				`{"sv": {"rows": 3, "cols": 2, "data": [1, 2]}, "alpha": [1, 1, 1], "rho": 0, "nu": 0.1}`),
			ErrInvalid},
		{"gp chol shape mismatch",
			forge(t, KindGP, 1, rbfSpec(),
				`{"x": {"rows": 2, "cols": 1, "data": [1, 2]}, "alpha": [1, 2], "chol": {"rows": 1, "cols": 1, "data": [1]}, "mean": 0, "noise": 0.1}`),
			ErrInvalid},
		{"kernel model without kernel spec",
			forge(t, KindSVC, 2, nil,
				`{"sv": {"rows": 1, "cols": 2, "data": [1, 2]}, "alpha": [1], "b": 0, "classes": [-1, 1]}`),
			ErrKernel},
		{"unknown kind",
			forge(t, Kind("neural"), 2, nil, `{}`), ErrKind},
		{"inf smuggled via huge exponent", // 1e999 overflows float64: a typed parse error, not +Inf
			forge(t, KindRidge, 1, nil, `{"w": [1e999], "b": 0}`), nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := Decode(tc.data) // must not panic
			if err == nil {
				t.Fatalf("Decode accepted hostile input, envelope %+v", a.Envelope)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// Baseline approx-linear payloads the adversarial cases mutate. Both
// decode cleanly under their matching envelopes (the positive controls
// below prove it), so each hostile variant fails for its own reason.
const (
	validRFFPayload = `{"proj": {"rows": 4, "cols": 2, "data": [1, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, ` +
		`"phase": [0, 1, 2, 3], "w": [1, 2, 3, 4], "bias": 0.1, "classes": [-1, 1]}`
	validNystromPayload = `{"proj": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, ` +
		`"whiten": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, "w": [0.5, 0.5], "bias": -0.2}`
)

func rffSpec4() *ApproxSpec     { return &ApproxSpec{Method: ApproxRFF, Dim: 4, Seed: 7} }
func nystromSpec2() *ApproxSpec { return &ApproxSpec{Method: ApproxNystrom, Dim: 2, Seed: 7} }

// TestDecodeRejectsForgedApproxArtifacts: the adversarial-artifact table
// for the approx-linear payload — truncated weight vectors, D/m bounds,
// smuggled or missing components, non-finite projections. Every case
// must fail loudly with the typed error; a forged compiled artifact must
// never reach scoring.
func TestDecodeRejectsForgedApproxArtifacts(t *testing.T) {
	// Positive controls: the baselines the hostile cases mutate are
	// themselves accepted, so each rejection below is for the mutation.
	for name, data := range map[string][]byte{
		"rff":     forgeApprox(t, KindSVC, 2, rbfSpec(), rffSpec4(), validRFFPayload),
		"nystrom": forgeApprox(t, KindOneClass, 2, rbfSpec(), nystromSpec2(), validNystromPayload),
	} {
		a, err := Decode(data)
		if err != nil {
			t.Fatalf("baseline %s approx forgery does not decode: %v", name, err)
		}
		if _, err := a.Scorer(); err != nil {
			t.Fatalf("baseline %s approx forgery has no scorer: %v", name, err)
		}
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"truncated weight vector",
			forgeApprox(t, KindSVC, 2, rbfSpec(), rffSpec4(),
				`{"proj": {"rows": 4, "cols": 2, "data": [1, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, `+
					`"phase": [0, 1, 2, 3], "w": [1, 2, 3], "bias": 0.1, "classes": [-1, 1]}`),
			ErrInvalid},
		{"dim zero",
			forgeApprox(t, KindSVC, 2, rbfSpec(), &ApproxSpec{Method: ApproxRFF, Dim: 0, Seed: 7},
				validRFFPayload),
			ErrInvalid},
		{"dim beyond MaxDim",
			forgeApprox(t, KindSVC, 2, rbfSpec(), &ApproxSpec{Method: ApproxRFF, Dim: 1 << 17, Seed: 7},
				validRFFPayload),
			ErrInvalid},
		{"unknown method",
			forgeApprox(t, KindSVC, 2, rbfSpec(), &ApproxSpec{Method: "chebyshev", Dim: 4, Seed: 7},
				validRFFPayload),
			ErrInvalid},
		{"dim lies about the projection",
			forgeApprox(t, KindSVC, 2, rbfSpec(), &ApproxSpec{Method: ApproxRFF, Dim: 8, Seed: 7},
				validRFFPayload),
			ErrInvalid},
		{"phase count mismatch",
			forgeApprox(t, KindSVC, 2, rbfSpec(), rffSpec4(),
				`{"proj": {"rows": 4, "cols": 2, "data": [1, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, `+
					`"phase": [0, 1, 2], "w": [1, 2, 3, 4], "bias": 0.1, "classes": [-1, 1]}`),
			ErrInvalid},
		{"rff smuggles a whiten matrix",
			forgeApprox(t, KindSVC, 2, rbfSpec(), rffSpec4(),
				`{"proj": {"rows": 4, "cols": 2, "data": [1, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, `+
					`"phase": [0, 1, 2, 3], "whiten": {"rows": 4, "cols": 4, "data": [0]}, `+
					`"w": [1, 2, 3, 4], "bias": 0.1, "classes": [-1, 1]}`),
			ErrInvalid},
		{"nystrom smuggles rff phases",
			forgeApprox(t, KindOneClass, 2, rbfSpec(), nystromSpec2(),
				`{"proj": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, "phase": [0, 1], `+
					`"whiten": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, "w": [0.5, 0.5], "bias": -0.2}`),
			ErrInvalid},
		{"nystrom missing whiten",
			forgeApprox(t, KindOneClass, 2, rbfSpec(), nystromSpec2(),
				`{"proj": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, "w": [0.5, 0.5], "bias": -0.2}`),
			ErrInvalid},
		{"nystrom without kernel spec",
			forgeApprox(t, KindOneClass, 2, nil, nystromSpec2(), validNystromPayload),
			ErrKernel},
		{"compiled svc missing classes",
			forgeApprox(t, KindSVC, 2, rbfSpec(), rffSpec4(),
				`{"proj": {"rows": 4, "cols": 2, "data": [1, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, `+
					`"phase": [0, 1, 2, 3], "w": [1, 2, 3, 4], "bias": 0.1}`),
			ErrInvalid},
		{"classes on a non-svc payload",
			forgeApprox(t, KindOneClass, 2, rbfSpec(), nystromSpec2(),
				`{"proj": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, `+
					`"whiten": {"rows": 2, "cols": 2, "data": [1, 0, 0, 1]}, "w": [0.5, 0.5], "bias": -0.2, "classes": [-1, 1]}`),
			ErrInvalid},
		{"approx payload under non-kernel kind",
			forgeApprox(t, KindRidge, 2, nil, rffSpec4(), validRFFPayload),
			ErrKind},
		{"projection width lies about envelope features",
			forgeApprox(t, KindSVC, 5, rbfSpec(), rffSpec4(), validRFFPayload),
			ErrInvalid},
		{"nan smuggled via huge exponent", // 1e999 overflows float64: typed parse error
			forgeApprox(t, KindSVC, 2, rbfSpec(), rffSpec4(),
				`{"proj": {"rows": 4, "cols": 2, "data": [1e999, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, `+
					`"phase": [0, 1, 2, 3], "w": [1, 2, 3, 4], "bias": 0.1, "classes": [-1, 1]}`),
			nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := Decode(tc.data) // must not panic
			if err == nil {
				t.Fatalf("Decode accepted forged approx artifact, envelope %+v", a.Envelope)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// TestValidateModelCatchesNonFinite: JSON cannot express NaN/Inf
// directly, but validateModel is the last line of defense for any
// future transport that can — and for in-process corruption.
func TestValidateModelCatchesNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	leaf := func(v float64) *tree.Node { return &tree.Node{Leaf: true, Value: v} }
	// compiledRFF builds an in-process ApproxModel around raw components,
	// bypassing the decoders — validateModel is the last line of defense.
	compiledRFF := func(omega, phase, w []float64, bias float64) *ApproxModel {
		om := linalg.NewMatrix(2, 2)
		copy(om.Data, omega)
		fm, err := approx.RestoreRFF(om, phase)
		if err != nil {
			t.Fatal(err)
		}
		return &ApproxModel{
			SourceKind: KindSVC,
			Spec:       ApproxSpec{Method: ApproxRFF, Dim: 2, Seed: 1},
			Kernel:     rbfSpec(),
			Lin:        &approx.Linear{Map: fm, W: w, Bias: bias},
			Classes:    [2]float64{-1, 1},
		}
	}
	cases := []struct {
		name     string
		m        any
		features int
	}{
		{"approx nan in projection",
			compiledRFF([]float64{1, nan, 0, 1}, []float64{0, 0}, []float64{1, 1}, 0), 2},
		{"approx inf phase",
			compiledRFF([]float64{1, 0, 0, 1}, []float64{0, inf}, []float64{1, 1}, 0), 2},
		{"approx nan weight",
			compiledRFF([]float64{1, 0, 0, 1}, []float64{0, 0}, []float64{nan, 1}, 0), 2},
		{"ridge nan weight", &linear.Regression{W: []float64{1, nan}, B: 0}, 2},
		{"ridge inf intercept", &linear.Regression{W: []float64{1}, B: inf}, 1},
		{"tree nan threshold", &tree.Tree{Root: &tree.Node{Feature: 0, Threshold: nan, Left: leaf(0), Right: leaf(1)}}, 1},
		{"tree inf leaf", &tree.Tree{Root: leaf(inf)}, 0},
		{"ruleset nan threshold", &rules.RuleSet{Rules: []*rules.Rule{
			{Conditions: []rules.Condition{{Feature: 0, Op: rules.LE, Threshold: nan}}, Class: 1},
		}, Target: 1}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			env := &Envelope{Features: tc.features}
			if err := validateModel(tc.m, env); !errors.Is(err, ErrInvalid) {
				t.Fatalf("validateModel = %v, want ErrInvalid", err)
			}
		})
	}

	// A sane model passes.
	if err := validateModel(&linear.Regression{W: []float64{1, 2}, B: 0.5}, &Envelope{Features: 2}); err != nil {
		t.Fatalf("valid ridge rejected: %v", err)
	}
}

// TestOversizedArtifactRejected: both Decode (bytes) and Load (file)
// refuse oversized envelopes with ErrOversize before allocating for
// the parse.
func TestOversizedArtifactRejected(t *testing.T) {
	big := make([]byte, MaxArtifactBytes+1)
	if _, err := Decode(big); !errors.Is(err, ErrOversize) {
		t.Fatalf("Decode(oversized) = %v, want ErrOversize", err)
	}

	path := filepath.Join(t.TempDir(), "huge.model.json")
	if err := os.WriteFile(path, big, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrOversize) {
		t.Fatalf("Load(oversized) = %v, want ErrOversize", err)
	}
}

// TestDecodeFaultSite: the model.decode injection site turns chaos-plan
// errors into typed load failures and catches injected corruption via
// the checksum, exactly like real bit rot.
func TestDecodeFaultSite(t *testing.T) {
	defer fault.Deactivate()
	art, err := Encode(&linear.Regression{W: []float64{1, 2}, B: 3}, Meta{Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := art.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: decodes cleanly with no plan.
	if _, err := Decode(data); err != nil {
		t.Fatalf("clean decode: %v", err)
	}

	fault.Activate(fault.Plan{Seed: 1, Sites: map[string]fault.SiteConfig{
		fault.SiteModelDecode: {ErrRate: 1},
	}})
	if _, err := Decode(data); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Decode under ErrRate=1 = %v, want ErrInjected", err)
	}

	// Corruption: flipping any byte must be caught loudly — either the
	// JSON no longer parses or the checksum no longer matches.
	fault.Activate(fault.Plan{Seed: 2, Sites: map[string]fault.SiteConfig{
		fault.SiteModelDecode: {CorruptRate: 1},
	}})
	sawError := false
	for i := 0; i < 32; i++ {
		if _, err := Decode(data); err != nil {
			sawError = true
			if strings.Contains(err.Error(), "panic") {
				t.Fatalf("corruption produced a panic-shaped error: %v", err)
			}
		}
	}
	if !sawError {
		t.Fatal("32 corrupted decodes all succeeded — corruption is not biting")
	}
}
