package model

import (
	"fmt"
	"math"

	"repro/internal/gp"
	"repro/internal/kernel/approx"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/tree"
)

// Adversarial-artifact hardening. Decode runs every rebuilt model
// through validateModel before handing it to a caller, so a hostile or
// corrupted artifact fails loudly with ErrInvalid instead of producing
// a model that panics (nil tree children, out-of-range feature
// indices), out-of-memory allocates (absurd feature counts reaching the
// batcher), or silently poisons predictions (NaN/Inf smuggled into
// weights). Legitimate artifacts — everything Encode writes — pass by
// construction.

// MaxFeatures bounds the declared feature count. The batcher allocates
// batch×features matrices from this number, so an unbounded value is an
// OOM lever; 2^20 features is far beyond anything the experiments use.
const MaxFeatures = 1 << 20

// maxTreeNodes bounds the node count of a decoded tree — a forged
// artifact must not smuggle an effectively unbounded structure past the
// size cap through pathological nesting.
const maxTreeNodes = 1 << 22

// finite returns an error naming the first non-finite value in xs.
func finite(what string, xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s[%d] is %v", ErrInvalid, what, i, v)
		}
	}
	return nil
}

func finiteScalar(what string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s is %v", ErrInvalid, what, v)
	}
	return nil
}

func finiteMatrix(what string, m *linalg.Matrix) error {
	return finite(what+".data", m.Data)
}

// validateEnvelope checks the kind-independent fields.
func validateEnvelope(env *Envelope) error {
	if env.Features < 0 || env.Features > MaxFeatures {
		return fmt.Errorf("%w: features = %d (must be 0..%d)", ErrInvalid, env.Features, MaxFeatures)
	}
	if env.Approx != nil {
		if env.Approx.Method != ApproxRFF && env.Approx.Method != ApproxNystrom {
			return fmt.Errorf("%w: unknown approx method %q", ErrInvalid, env.Approx.Method)
		}
		if env.Approx.Dim <= 0 || env.Approx.Dim > approx.MaxDim {
			return fmt.Errorf("%w: approx dim %d outside 1..%d", ErrInvalid, env.Approx.Dim, approx.MaxDim)
		}
	}
	return nil
}

// validateModel checks the rebuilt model against its envelope: finite
// parameters, structurally sound trees/rules, and feature indices that
// stay inside the width the scorer will demand of every instance.
func validateModel(m any, env *Envelope) error {
	switch mm := m.(type) {
	case *ApproxModel:
		if d := mm.Lin.Map.InputDim(); d != env.Features {
			return fmt.Errorf("%w: approx projection takes %d-wide inputs, envelope says %d",
				ErrInvalid, d, env.Features)
		}
		switch fm := mm.Lin.Map.(type) {
		case *approx.RFF:
			if err := finiteMatrix("proj", fm.Omega); err != nil {
				return err
			}
			if err := finite("phase", fm.Phase); err != nil {
				return err
			}
		case *approx.Nystrom:
			if err := finiteMatrix("landmarks", fm.Landmarks); err != nil {
				return err
			}
			if err := finiteMatrix("whiten", fm.Whiten); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: no validator for feature map %T", ErrKind, mm.Lin.Map)
		}
		if err := finite("w", mm.Lin.W); err != nil {
			return err
		}
		if err := finiteScalar("bias", mm.Lin.Bias); err != nil {
			return err
		}
		if mm.SourceKind == KindSVC {
			return finite("classes", mm.Classes[:])
		}
		return nil
	case *svm.SVC:
		if mm.SV.Cols != env.Features {
			return fmt.Errorf("%w: svc support vectors are %d wide, envelope says %d",
				ErrInvalid, mm.SV.Cols, env.Features)
		}
		if err := finiteMatrix("sv", mm.SV); err != nil {
			return err
		}
		if err := finite("alpha", mm.Alpha); err != nil {
			return err
		}
		if err := finiteScalar("b", mm.B); err != nil {
			return err
		}
		cls := mm.Classes()
		return finite("classes", cls[:])
	case *svm.OneClass:
		if mm.SV.Cols != env.Features {
			return fmt.Errorf("%w: oneclass support vectors are %d wide, envelope says %d",
				ErrInvalid, mm.SV.Cols, env.Features)
		}
		if err := finiteMatrix("sv", mm.SV); err != nil {
			return err
		}
		if err := finite("alpha", mm.Alpha); err != nil {
			return err
		}
		return finiteScalar("rho", mm.Rho)
	case *linear.Regression:
		if len(mm.W) != env.Features {
			return fmt.Errorf("%w: ridge has %d weights, envelope says %d features",
				ErrInvalid, len(mm.W), env.Features)
		}
		if err := finite("w", mm.W); err != nil {
			return err
		}
		return finiteScalar("b", mm.B)
	case *gp.Regressor:
		if mm.X.Cols != env.Features {
			return fmt.Errorf("%w: gp training inputs are %d wide, envelope says %d",
				ErrInvalid, mm.X.Cols, env.Features)
		}
		if err := finiteMatrix("x", mm.X); err != nil {
			return err
		}
		if err := finite("alpha", mm.Alpha()); err != nil {
			return err
		}
		if err := finiteMatrix("chol", mm.Chol()); err != nil {
			return err
		}
		if err := finiteScalar("mean", mm.Mean()); err != nil {
			return err
		}
		return finiteScalar("noise", mm.Noise())
	case *tree.Tree:
		n := 0
		return validateTreeNode(mm.Root, env.Features, &n)
	case *rules.RuleSet:
		for ri, r := range mm.Rules {
			if r == nil {
				return fmt.Errorf("%w: rule %d is null", ErrInvalid, ri)
			}
			for ci, c := range r.Conditions {
				if c.Feature < 0 || c.Feature >= env.Features {
					return fmt.Errorf("%w: rule %d condition %d tests feature %d, envelope allows 0..%d",
						ErrInvalid, ri, ci, c.Feature, env.Features-1)
				}
				if err := finiteScalar(fmt.Sprintf("rule[%d].threshold[%d]", ri, ci), c.Threshold); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: no validator for %T", ErrKind, m)
	}
}

// validateTreeNode walks the decoded tree: every interior node must
// have both children and an in-range split feature, every value must be
// finite, and the total node count stays bounded.
func validateTreeNode(n *tree.Node, features int, count *int) error {
	if n == nil {
		return fmt.Errorf("%w: tree has a non-leaf node with a missing child", ErrInvalid)
	}
	*count++
	if *count > maxTreeNodes {
		return fmt.Errorf("%w: tree exceeds %d nodes", ErrInvalid, maxTreeNodes)
	}
	if n.Leaf {
		return finiteScalar("leaf value", n.Value)
	}
	if n.Feature < 0 || n.Feature >= features {
		return fmt.Errorf("%w: tree splits on feature %d, envelope allows 0..%d",
			ErrInvalid, n.Feature, features-1)
	}
	if err := finiteScalar("threshold", n.Threshold); err != nil {
		return err
	}
	if err := validateTreeNode(n.Left, features, count); err != nil {
		return err
	}
	return validateTreeNode(n.Right, features, count)
}
