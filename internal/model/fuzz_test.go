package model

// FuzzModelDecode (ISSUE 4): model.Decode must return a typed error —
// never panic, never OOM — on arbitrary bytes, and anything it accepts
// must yield a Scorer that scores a well-formed instance without
// panicking. The committed golden artifacts and the hostile forgeries
// under testdata/fuzz/FuzzModelDecode seed the corpus; scripts/fuzz.sh
// runs the target for 30s in CI's fuzz job.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/svm"
)

func FuzzModelDecode(f *testing.F) {
	// Seed with every committed golden artifact: the fuzzer mutates real
	// envelopes instead of rediscovering JSON from scratch.
	golden, _ := filepath.Glob(filepath.Join("testdata", "golden_v1_*.json"))
	for _, path := range golden {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	// Hostile shapes the hardening tests check explicitly.
	f.Add([]byte(`{"schema_version": 1, "kind": "ridge"`))
	f.Add([]byte(`{"schema_version": 99, "kind": "ridge", "payload": {}}`))
	f.Add(forge(f, KindRidge, 2, nil, `{"w": [1, 2], "b": 0.5}`))
	f.Add(forge(f, KindRidge, -1, nil, `{"w": [1], "b": 0}`))
	f.Add(forge(f, KindTree, 2, nil,
		`{"max_depth": 2, "min_leaf": 1, "root": {"feature": 0, "threshold": 1, "left": {"leaf": true, "value": 1}}}`))
	f.Add(forge(f, KindSVC, 2, rbfSpec(),
		`{"sv": {"rows": 2147483648, "cols": 8589934592, "data": []}, "alpha": [], "b": 0, "classes": [-1, 1]}`))
	f.Add(forge(f, KindRuleSet, 2, nil,
		`{"rules": [{"conditions": [{"feature": 5, "op": 0, "threshold": 1}], "class": 1}], "target": 1, "default": 0}`))

	// A genuine compiled approx-linear artifact, so mutations explore the
	// env.Approx decode path, plus a forged truncated-weights variant.
	f.Add(compiledSeed(f))
	f.Add(forgeApprox(f, KindSVC, 2, rbfSpec(), &ApproxSpec{Method: ApproxRFF, Dim: 4, Seed: 7},
		`{"proj": {"rows": 4, "cols": 2, "data": [1, 0, 0, 1, 0.5, -0.5, 0.25, 0.75]}, `+
			`"phase": [0, 1, 2, 3], "w": [1], "bias": 0.1, "classes": [-1, 1]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tryDecode(t, data)

		// Most mutations die at the checksum gate, which would leave the
		// payload decoder and validator unfuzzed. Re-sign the mutated
		// payload with a valid checksum and schema version so the deeper
		// layers see hostile input too.
		var env Envelope
		if json.Unmarshal(data, &env) == nil && len(env.Payload) > 0 {
			if sum, err := checksum(env.Payload); err == nil {
				env.SchemaVersion = SchemaVersion
				env.Checksum = sum
				if fixed, err := json.Marshal(&env); err == nil {
					tryDecode(t, fixed)
				}
			}
		}
	})
}

// compiledSeed marshals a real compiled SVC (RFF D=8 over a 3-vector
// expansion) — the same bytes committed under testdata/fuzz.
func compiledSeed(f *testing.F) []byte {
	sv := linalg.NewMatrix(3, 2)
	copy(sv.Data, []float64{0.5, -1, 1.5, 0.25, -0.75, 2})
	svc := svm.RestoreSVC(kernel.RBF{Gamma: 0.5}, sv, []float64{1, -0.5, 0.25}, 0.1, [2]float64{-1, 1})
	am, err := CompileApprox(svc, ApproxSpec{Method: ApproxRFF, Dim: 8, Seed: 7})
	if err != nil {
		f.Fatal(err)
	}
	art, err := Encode(am, Meta{Name: "fuzz-compiled"})
	if err != nil {
		f.Fatal(err)
	}
	data, err := art.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// tryDecode runs one input through Decode and, when it is accepted,
// through scoring — the promise is "typed error or a safe model",
// so an accepted artifact must score without panicking.
func tryDecode(t *testing.T, data []byte) {
	a, err := Decode(data)
	if err != nil {
		return // loud failure is the contract; the fuzz engine catches panics
	}
	if a.Envelope.Features < 0 || a.Envelope.Features > MaxFeatures {
		t.Fatalf("accepted artifact with features = %d", a.Envelope.Features)
	}
	scorer, err := a.Scorer()
	if err != nil {
		return
	}
	dim := scorer.Dim()
	if dim < 0 || dim > MaxFeatures {
		t.Fatalf("accepted artifact with scorer dim = %d", dim)
	}
	_ = scorer.ScoreRow(make([]float64, dim))
}
