package model

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/kernel/approx"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/tree"
)

// KernelSpec is the persistable description of a vector kernel. It
// covers the closed-form kernels of internal/kernel (linear, poly, RBF,
// sigmoid, histogram intersection, plus the cosine-normalized wrapper);
// data-dependent kernels such as the n-gram spectrum family carry state
// that belongs to the sample representation, not the model, and are
// rejected at save time.
type KernelSpec struct {
	Name      string  `json:"name"` // linear | poly | rbf | sigmoid | histogram-intersection
	Degree    int     `json:"degree,omitempty"`
	Gamma     float64 `json:"gamma,omitempty"`
	Coef0     float64 `json:"coef0,omitempty"`
	Normalize bool    `json:"normalize,omitempty"` // wrapped in kernel.Normalize
}

// SpecOf captures a kernel as a KernelSpec, or ErrKernel when the
// kernel has no persistable form.
func SpecOf(k kernel.Kernel) (*KernelSpec, error) {
	spec := &KernelSpec{}
	if n, ok := k.(kernel.Normalize); ok {
		spec.Normalize = true
		k = n.K
	}
	switch kk := k.(type) {
	case kernel.Linear:
		spec.Name = "linear"
	case kernel.Poly:
		spec.Name = "poly"
		spec.Degree = kk.Degree
		spec.Gamma = kk.Gamma
		spec.Coef0 = kk.Coef0
	case kernel.RBF:
		spec.Name = "rbf"
		spec.Gamma = kk.Gamma
	case kernel.Sigmoid:
		spec.Name = "sigmoid"
		spec.Gamma = kk.Gamma
		spec.Coef0 = kk.Coef0
	case kernel.HistogramIntersection:
		spec.Name = "histogram-intersection"
	default:
		return nil, fmt.Errorf("%w: %T (%s)", ErrKernel, k, k.Name())
	}
	return spec, nil
}

// Build reconstructs the kernel the spec describes.
func (s *KernelSpec) Build() (kernel.Kernel, error) {
	var k kernel.Kernel
	switch s.Name {
	case "linear":
		k = kernel.Linear{}
	case "poly":
		k = kernel.Poly{Degree: s.Degree, Gamma: s.Gamma, Coef0: s.Coef0}
	case "rbf":
		k = kernel.RBF{Gamma: s.Gamma}
	case "sigmoid":
		k = kernel.Sigmoid{Gamma: s.Gamma, Coef0: s.Coef0}
	case "histogram-intersection":
		k = kernel.HistogramIntersection{}
	default:
		return nil, fmt.Errorf("%w: %q", ErrKernel, s.Name)
	}
	if s.Normalize {
		k = kernel.Normalize{K: k}
	}
	return k, nil
}

// matrixJSON is the persisted form of a dense matrix.
type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

func matrixOut(m *linalg.Matrix) matrixJSON {
	return matrixJSON{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func (m matrixJSON) build() (*linalg.Matrix, error) {
	// The element-count comparison must not be reachable through integer
	// overflow: a forged shape like 2^31 x 2^33 wraps Rows*Cols to 0 and
	// would "match" an empty Data slice, yielding a matrix whose Row()
	// panics. Bound the product first.
	if m.Rows < 0 || m.Cols < 0 || (m.Rows > 0 && m.Cols > math.MaxInt/m.Rows) ||
		len(m.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("%w: matrix shape %dx%d does not match %d elements",
			ErrInvalid, m.Rows, m.Cols, len(m.Data))
	}
	return &linalg.Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data}, nil
}

// Kind-specific payloads. These mirror the fitted model structs rather
// than embedding them so the artifact format stays stable even when the
// in-memory structs are refactored.
type (
	svcPayload struct {
		SV      matrixJSON `json:"sv"`
		Alpha   []float64  `json:"alpha"`
		B       float64    `json:"b"`
		Classes [2]float64 `json:"classes"`
	}
	oneClassPayload struct {
		SV    matrixJSON `json:"sv"`
		Alpha []float64  `json:"alpha"`
		Rho   float64    `json:"rho"`
		Nu    float64    `json:"nu"`
	}
	ridgePayload struct {
		W []float64 `json:"w"`
		B float64   `json:"b"`
	}
	gpPayload struct {
		X     matrixJSON `json:"x"`
		Alpha []float64  `json:"alpha"`
		Chol  matrixJSON `json:"chol"`
		Mean  float64    `json:"mean"`
		Noise float64    `json:"noise"`
	}
	treeNodeJSON struct {
		Feature   int           `json:"feature,omitempty"`
		Threshold float64       `json:"threshold,omitempty"`
		Left      *treeNodeJSON `json:"left,omitempty"`
		Right     *treeNodeJSON `json:"right,omitempty"`
		Leaf      bool          `json:"leaf,omitempty"`
		Value     float64       `json:"value,omitempty"`
		N         int           `json:"n,omitempty"`
	}
	treePayload struct {
		MaxDepth   int           `json:"max_depth"`
		MinLeaf    int           `json:"min_leaf"`
		Regression bool          `json:"regression,omitempty"`
		Root       *treeNodeJSON `json:"root"`
	}
	conditionJSON struct {
		Feature   int     `json:"feature"`
		Op        int     `json:"op"` // 0: <=, 1: >
		Threshold float64 `json:"threshold"`
		Name      string  `json:"name,omitempty"`
	}
	ruleJSON struct {
		Conditions []conditionJSON `json:"conditions"`
		Class      int             `json:"class"`
		WRAcc      float64         `json:"wracc"`
		Coverage   int             `json:"coverage"`
		Positives  int             `json:"positives"`
	}
	ruleSetPayload struct {
		Rules   []ruleJSON `json:"rules"`
		Target  int        `json:"target"`
		Default int        `json:"default"`
	}
	// approxLinearPayload is the compiled form of a kernel model (see
	// compile.go). Proj is the RFF frequency matrix (D×d) or the Nyström
	// landmark matrix (m×d); Phase/Whiten are method-specific. The
	// envelope's Approx field says which method applies.
	approxLinearPayload struct {
		Proj    matrixJSON  `json:"proj"`
		Phase   []float64   `json:"phase,omitempty"`  // rff only: D phase offsets
		Whiten  *matrixJSON `json:"whiten,omitempty"` // nystrom only: m×m whitening
		W       []float64   `json:"w"`
		Bias    float64     `json:"bias"`
		Classes *[2]float64 `json:"classes,omitempty"` // svc only
	}
)

func treeNodeOut(n *tree.Node) *treeNodeJSON {
	if n == nil {
		return nil
	}
	return &treeNodeJSON{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Left:      treeNodeOut(n.Left),
		Right:     treeNodeOut(n.Right),
		Leaf:      n.Leaf,
		Value:     n.Value,
		N:         n.N,
	}
}

func (n *treeNodeJSON) build() *tree.Node {
	if n == nil {
		return nil
	}
	return &tree.Node{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Left:      n.Left.build(),
		Right:     n.Right.build(),
		Leaf:      n.Leaf,
		Value:     n.Value,
		N:         n.N,
	}
}

// encodePayload dispatches on the fitted model type.
func encodePayload(m any) (kind Kind, features int, kspec *KernelSpec, payload []byte, err error) {
	marshal := func(v any) []byte {
		payload, err = json.Marshal(v)
		if err != nil {
			err = fmt.Errorf("model: marshal payload: %w", err)
		}
		return payload
	}
	switch mm := m.(type) {
	case *svm.SVC:
		kspec, err = SpecOf(mm.K)
		if err != nil {
			return "", 0, nil, nil, err
		}
		return KindSVC, mm.SV.Cols, kspec, marshal(svcPayload{
			SV: matrixOut(mm.SV), Alpha: mm.Alpha, B: mm.B, Classes: mm.Classes(),
		}), err
	case *svm.OneClass:
		kspec, err = SpecOf(mm.K)
		if err != nil {
			return "", 0, nil, nil, err
		}
		return KindOneClass, mm.SV.Cols, kspec, marshal(oneClassPayload{
			SV: matrixOut(mm.SV), Alpha: mm.Alpha, Rho: mm.Rho, Nu: mm.Nu,
		}), err
	case *linear.Regression:
		return KindRidge, len(mm.W), nil, marshal(ridgePayload{W: mm.W, B: mm.B}), err
	case *gp.Regressor:
		kspec, err = SpecOf(mm.K)
		if err != nil {
			return "", 0, nil, nil, err
		}
		return KindGP, mm.X.Cols, kspec, marshal(gpPayload{
			X: matrixOut(mm.X), Alpha: mm.Alpha(), Chol: matrixOut(mm.Chol()),
			Mean: mm.Mean(), Noise: mm.Noise(),
		}), err
	case *tree.Tree:
		return KindTree, treeFeatures(mm.Root), nil, marshal(treePayload{
			MaxDepth: mm.Config.MaxDepth, MinLeaf: mm.Config.MinLeaf,
			Regression: mm.Config.Regression, Root: treeNodeOut(mm.Root),
		}), err
	case *ApproxModel:
		switch mm.SourceKind {
		case KindSVC, KindOneClass, KindGP:
		default:
			return "", 0, nil, nil, fmt.Errorf("%w: approx-linear cannot represent kind %q", ErrKind, mm.SourceKind)
		}
		p := approxLinearPayload{W: mm.Lin.W, Bias: mm.Lin.Bias}
		switch fm := mm.Lin.Map.(type) {
		case *approx.RFF:
			p.Proj = matrixOut(fm.Omega)
			p.Phase = fm.Phase
		case *approx.Nystrom:
			p.Proj = matrixOut(fm.Landmarks)
			wh := matrixOut(fm.Whiten)
			p.Whiten = &wh
		default:
			return "", 0, nil, nil, fmt.Errorf("%w: cannot persist feature map %T", ErrKind, mm.Lin.Map)
		}
		if mm.SourceKind == KindSVC {
			cls := mm.Classes
			p.Classes = &cls
		}
		return mm.SourceKind, mm.Lin.Map.InputDim(), mm.Kernel, marshal(p), err
	case *rules.RuleSet:
		out := ruleSetPayload{Target: mm.Target, Default: mm.Default}
		maxFeat := -1
		for _, r := range mm.Rules {
			rj := ruleJSON{Class: r.Class, WRAcc: r.WRAcc, Coverage: r.Coverage, Positives: r.Positives}
			for _, c := range r.Conditions {
				rj.Conditions = append(rj.Conditions, conditionJSON{
					Feature: c.Feature, Op: int(c.Op), Threshold: c.Threshold, Name: c.Name,
				})
				if c.Feature > maxFeat {
					maxFeat = c.Feature
				}
			}
			out.Rules = append(out.Rules, rj)
		}
		return KindRuleSet, maxFeat + 1, nil, marshal(out), err
	default:
		return "", 0, nil, nil, fmt.Errorf("%w: cannot persist %T", ErrKind, m)
	}
}

// treeFeatures returns 1 + the highest feature index the tree splits on
// — the minimum input width the tree can score.
func treeFeatures(n *tree.Node) int {
	if n == nil || n.Leaf {
		return 0
	}
	f := n.Feature + 1
	if l := treeFeatures(n.Left); l > f {
		f = l
	}
	if r := treeFeatures(n.Right); r > f {
		f = r
	}
	return f
}

// decodePayload rebuilds the fitted model described by the envelope.
func decodePayload(env *Envelope) (any, error) {
	if env.Approx != nil {
		return decodeApproxPayload(env)
	}
	unmarshal := func(v any) error {
		if err := json.Unmarshal(env.Payload, v); err != nil {
			return fmt.Errorf("model: parse %s payload: %w", env.Kind, err)
		}
		return nil
	}
	buildKernel := func() (kernel.Kernel, error) {
		if env.Kernel == nil {
			return nil, fmt.Errorf("%w: %s artifact is missing its kernel spec", ErrKernel, env.Kind)
		}
		return env.Kernel.Build()
	}
	switch env.Kind {
	case KindSVC:
		var p svcPayload
		if err := unmarshal(&p); err != nil {
			return nil, err
		}
		k, err := buildKernel()
		if err != nil {
			return nil, err
		}
		sv, err := p.SV.build()
		if err != nil {
			return nil, err
		}
		if len(p.Alpha) != sv.Rows {
			return nil, fmt.Errorf("%w: svc has %d support vectors but %d alphas", ErrInvalid, sv.Rows, len(p.Alpha))
		}
		return svm.RestoreSVC(k, sv, p.Alpha, p.B, p.Classes), nil
	case KindOneClass:
		var p oneClassPayload
		if err := unmarshal(&p); err != nil {
			return nil, err
		}
		k, err := buildKernel()
		if err != nil {
			return nil, err
		}
		sv, err := p.SV.build()
		if err != nil {
			return nil, err
		}
		if len(p.Alpha) != sv.Rows {
			return nil, fmt.Errorf("%w: oneclass has %d support vectors but %d alphas", ErrInvalid, sv.Rows, len(p.Alpha))
		}
		return &svm.OneClass{K: k, SV: sv, Alpha: p.Alpha, Rho: p.Rho, Nu: p.Nu}, nil
	case KindRidge:
		var p ridgePayload
		if err := unmarshal(&p); err != nil {
			return nil, err
		}
		return &linear.Regression{W: p.W, B: p.B}, nil
	case KindGP:
		var p gpPayload
		if err := unmarshal(&p); err != nil {
			return nil, err
		}
		k, err := buildKernel()
		if err != nil {
			return nil, err
		}
		x, err := p.X.build()
		if err != nil {
			return nil, err
		}
		chol, err := p.Chol.build()
		if err != nil {
			return nil, err
		}
		if len(p.Alpha) != x.Rows || chol.Rows != x.Rows || chol.Cols != x.Rows {
			return nil, fmt.Errorf("%w: gp shapes disagree: %d training rows, %d alphas, %dx%d chol",
				ErrInvalid, x.Rows, len(p.Alpha), chol.Rows, chol.Cols)
		}
		return gp.Restore(k, x, p.Alpha, chol, p.Mean, p.Noise), nil
	case KindTree:
		var p treePayload
		if err := unmarshal(&p); err != nil {
			return nil, err
		}
		if p.Root == nil {
			return nil, fmt.Errorf("%w: tree artifact has no root node", ErrInvalid)
		}
		return &tree.Tree{
			Root: p.Root.build(),
			Config: tree.Config{
				MaxDepth: p.MaxDepth, MinLeaf: p.MinLeaf, Regression: p.Regression,
			},
		}, nil
	case KindRuleSet:
		var p ruleSetPayload
		if err := unmarshal(&p); err != nil {
			return nil, err
		}
		rs := &rules.RuleSet{Target: p.Target, Default: p.Default}
		for _, rj := range p.Rules {
			r := &rules.Rule{Class: rj.Class, WRAcc: rj.WRAcc, Coverage: rj.Coverage, Positives: rj.Positives}
			for _, c := range rj.Conditions {
				if c.Op != int(rules.LE) && c.Op != int(rules.GT) {
					return nil, fmt.Errorf("%w: ruleset condition has unknown op %d", ErrInvalid, c.Op)
				}
				r.Conditions = append(r.Conditions, rules.Condition{
					Feature: c.Feature, Op: rules.Op(c.Op), Threshold: c.Threshold, Name: c.Name,
				})
			}
			rs.Rules = append(rs.Rules, r)
		}
		return rs, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrKind, env.Kind)
	}
}

// decodeApproxPayload rebuilds a compiled approx-linear model. Every
// structural inconsistency — wrong method fields, shape mismatches,
// a map dimension the envelope does not declare — is a typed ErrInvalid
// (or ErrKind/ErrKernel); a forged compiled artifact never scores.
func decodeApproxPayload(env *Envelope) (any, error) {
	spec := env.Approx
	switch spec.Method {
	case ApproxRFF, ApproxNystrom:
	default:
		return nil, fmt.Errorf("%w: unknown approx method %q", ErrInvalid, spec.Method)
	}
	if spec.Dim <= 0 || spec.Dim > approx.MaxDim {
		return nil, fmt.Errorf("%w: approx dim %d outside 1..%d", ErrInvalid, spec.Dim, approx.MaxDim)
	}
	switch env.Kind {
	case KindSVC, KindOneClass, KindGP:
	default:
		return nil, fmt.Errorf("%w: approx-linear payload under kind %q", ErrKind, env.Kind)
	}
	var p approxLinearPayload
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return nil, fmt.Errorf("model: parse approx payload: %w", err)
	}
	proj, err := p.Proj.build()
	if err != nil {
		return nil, err
	}
	var fm approx.FeatureMap
	switch spec.Method {
	case ApproxRFF:
		if p.Whiten != nil {
			return nil, fmt.Errorf("%w: rff payload carries a whiten matrix", ErrInvalid)
		}
		r, err := approx.RestoreRFF(proj, p.Phase)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		fm = r
	case ApproxNystrom:
		if len(p.Phase) != 0 {
			return nil, fmt.Errorf("%w: nystrom payload carries rff phases", ErrInvalid)
		}
		if p.Whiten == nil {
			return nil, fmt.Errorf("%w: nystrom payload is missing its whiten matrix", ErrInvalid)
		}
		if env.Kernel == nil {
			return nil, fmt.Errorf("%w: nystrom artifact is missing its kernel spec", ErrKernel)
		}
		k, err := env.Kernel.Build()
		if err != nil {
			return nil, err
		}
		wh, err := p.Whiten.build()
		if err != nil {
			return nil, err
		}
		ny, err := approx.RestoreNystrom(k, proj, wh)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		fm = ny
	}
	if fm.Dim() != spec.Dim {
		return nil, fmt.Errorf("%w: envelope declares approx dim %d, projection has %d",
			ErrInvalid, spec.Dim, fm.Dim())
	}
	if len(p.W) != fm.Dim() {
		return nil, fmt.Errorf("%w: %d weights for a %d-dimensional map", ErrInvalid, len(p.W), fm.Dim())
	}
	am := &ApproxModel{
		SourceKind: env.Kind, Spec: *spec, Kernel: env.Kernel,
		Lin: &approx.Linear{Map: fm, W: p.W, Bias: p.Bias},
	}
	if env.Kind == KindSVC {
		if p.Classes == nil {
			return nil, fmt.Errorf("%w: compiled svc is missing its class labels", ErrInvalid)
		}
		am.Classes = *p.Classes
	} else if p.Classes != nil {
		return nil, fmt.Errorf("%w: class labels on a non-svc approx payload", ErrInvalid)
	}
	return am, nil
}
