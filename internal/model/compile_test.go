package model

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/kernel/approx"
	"repro/internal/linalg"
	"repro/internal/svm"
)

func testMatrix(r *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// compileFixtures returns one fitted model of each compilable kind,
// restored from synthetic parameters (no training needed).
func compileFixtures(t *testing.T) map[Kind]any {
	t.Helper()
	r := rand.New(rand.NewSource(41))
	sv := testMatrix(r, 25, 4)
	alpha := make([]float64, 25)
	for i := range alpha {
		alpha[i] = r.NormFloat64()
	}
	k := kernel.RBF{Gamma: 0.5}
	chol := linalg.NewMatrix(25, 25)
	for i := 0; i < 25; i++ {
		chol.Data[i*25+i] = 1
	}
	return map[Kind]any{
		KindSVC:      svm.RestoreSVC(k, sv, alpha, 0.3, [2]float64{-1, 1}),
		KindOneClass: &svm.OneClass{K: k, SV: sv, Alpha: alpha, Rho: 0.2, Nu: 0.5},
		KindGP:       gp.Restore(k, sv, alpha, chol, 0.1, 1e-2),
	}
}

// exactDecision returns the raw expansion value the compiled score
// approximates.
func exactDecision(m any, x []float64) float64 {
	switch mm := m.(type) {
	case *svm.SVC:
		return mm.Decision(x)
	case *svm.OneClass:
		return mm.Decision(x)
	case *gp.Regressor:
		return mm.Predict(x)
	}
	panic("unreachable")
}

// TestCompileRoundTrip: compile each kind with each method, marshal,
// decode, and check (a) the decoded model scores bit-identically to the
// compiled one, (b) marshaling is byte-deterministic, (c) the decision
// values track the exact model on the training rows.
func TestCompileRoundTrip(t *testing.T) {
	fixtures := compileFixtures(t)
	r := rand.New(rand.NewSource(5))
	probes := testMatrix(r, 10, 4)
	for kind, m := range fixtures {
		for _, tc := range []struct {
			spec  ApproxSpec
			bound float64
		}{
			// RFF Monte-Carlo error at D=512 over ~25 unit-scale duals.
			{ApproxSpec{Method: ApproxRFF, Dim: 512, Seed: 7}, 1.0},
			// Full-rank Nyström is exact on the training rows.
			{ApproxSpec{Method: ApproxNystrom, Dim: 25, Seed: 7}, 1e-6},
		} {
			spec := tc.spec
			am, err := CompileApprox(m, spec)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", kind, spec.Method, err)
			}
			a, err := Encode(am, Meta{Name: "compiled", Seed: spec.Seed})
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", kind, spec.Method, err)
			}
			if a.Envelope.Kind != kind {
				t.Errorf("%s/%s: envelope kind %s", kind, spec.Method, a.Envelope.Kind)
			}
			if a.Envelope.Approx == nil || a.Envelope.Approx.Method != spec.Method {
				t.Fatalf("%s/%s: envelope approx field %+v", kind, spec.Method, a.Envelope.Approx)
			}
			data, err := a.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			data2, _ := a.Marshal()
			if !bytes.Equal(data, data2) {
				t.Errorf("%s/%s: marshal not deterministic", kind, spec.Method)
			}
			back, err := Decode(data)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", kind, spec.Method, err)
			}
			bm, ok := back.Model.(*ApproxModel)
			if !ok {
				t.Fatalf("%s/%s: decoded to %T", kind, spec.Method, back.Model)
			}
			for i := 0; i < probes.Rows; i++ {
				x := probes.Row(i)
				if math.Float64bits(bm.ScoreRow(x)) != math.Float64bits(am.ScoreRow(x)) {
					t.Fatalf("%s/%s: decoded model scores differently on probe %d", kind, spec.Method, i)
				}
			}
			// Error bound vs the exact expansion on training rows; the
			// tradeoff curve lives in EXPERIMENTS.md and the conformance
			// lane asserts the serving-grade tolerance.
			var basis *linalg.Matrix
			switch mm := m.(type) {
			case *svm.SVC:
				basis = mm.SV
			case *svm.OneClass:
				basis = mm.SV
			case *gp.Regressor:
				basis = mm.X
			}
			worst := 0.0
			for i := 0; i < basis.Rows; i++ {
				e := math.Abs(bm.Decision(basis.Row(i)) - exactDecision(m, basis.Row(i)))
				if e > worst {
					worst = e
				}
			}
			t.Logf("%s/%s max train-row |approx − exact| = %.4g", kind, spec.Method, worst)
			if worst > tc.bound {
				t.Errorf("%s/%s: approx error %g exceeds %g", kind, spec.Method, worst, tc.bound)
			}
		}
	}
}

// TestCompileErrors: unsupported sources and kernels fail with typed
// errors at compile time, not at decode time.
func TestCompileErrors(t *testing.T) {
	if _, err := CompileApprox(42, ApproxSpec{Method: ApproxRFF, Dim: 8, Seed: 1}); !errors.Is(err, ErrKind) {
		t.Errorf("non-model source: got %v, want ErrKind", err)
	}
	r := rand.New(rand.NewSource(2))
	sv := testMatrix(r, 5, 3)
	poly := svm.RestoreSVC(kernel.Poly{Degree: 2, Gamma: 1}, sv, make([]float64, 5), 0, [2]float64{0, 1})
	if _, err := CompileApprox(poly, ApproxSpec{Method: ApproxRFF, Dim: 8, Seed: 1}); !errors.Is(err, approx.ErrKernel) {
		t.Errorf("rff over poly kernel: got %v, want approx.ErrKernel", err)
	}
	// Nyström handles the poly kernel fine.
	if _, err := CompileApprox(poly, ApproxSpec{Method: ApproxNystrom, Dim: 4, Seed: 1}); err != nil {
		t.Errorf("nystrom over poly kernel: %v", err)
	}
	rbf := svm.RestoreSVC(kernel.RBF{Gamma: 1}, sv, make([]float64, 5), 0, [2]float64{0, 1})
	if _, err := CompileApprox(rbf, ApproxSpec{Method: "fft", Dim: 8, Seed: 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown method: got %v, want ErrInvalid", err)
	}
	if _, err := CompileApprox(rbf, ApproxSpec{Method: ApproxRFF, Dim: 0, Seed: 1}); !errors.Is(err, approx.ErrDim) {
		t.Errorf("zero dim: got %v, want approx.ErrDim", err)
	}
}

// TestNystromDimClamped: requesting more landmarks than basis rows
// records the clamped dimension in the spec, and the artifact round
// trips under it.
func TestNystromDimClamped(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sv := testMatrix(r, 6, 2)
	m := &svm.OneClass{K: kernel.RBF{Gamma: 1}, SV: sv, Alpha: make([]float64, 6), Rho: 0, Nu: 0.5}
	am, err := CompileApprox(m, ApproxSpec{Method: ApproxNystrom, Dim: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if am.Spec.Dim != 6 {
		t.Fatalf("spec dim %d, want clamped 6", am.Spec.Dim)
	}
	a, err := Encode(am, Meta{Name: "clamped"})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := a.Marshal()
	if _, err := Decode(data); err != nil {
		t.Fatalf("clamped artifact does not round trip: %v", err)
	}
}

// TestParseApproxSpec covers the CLI grammar.
func TestParseApproxSpec(t *testing.T) {
	got, err := ParseApproxSpec("rff:512", 9)
	if err != nil || got != (ApproxSpec{Method: "rff", Dim: 512, Seed: 9}) {
		t.Errorf("rff:512 → %+v, %v", got, err)
	}
	if _, err := ParseApproxSpec("nystrom:128", 0); err != nil {
		t.Errorf("nystrom:128: %v", err)
	}
	for _, bad := range []string{"", "rff", "rff:", "rff:0", "rff:-4", "rff:99999999", "fft:64", "rff:x"} {
		if _, err := ParseApproxSpec(bad, 0); err == nil {
			t.Errorf("ParseApproxSpec(%q) accepted", bad)
		}
	}
}

// TestApproxScorerFastPath: the artifact Scorer for a compiled model is
// the approx path (Dim reports the input width) and KernelExpansion
// reports false, so the serving layer cannot route a compiled model
// through the kernel-row cache.
func TestApproxScorerFastPath(t *testing.T) {
	m := compileFixtures(t)[KindGP]
	am, err := CompileApprox(m, ApproxSpec{Method: ApproxRFF, Dim: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Encode(am, Meta{Name: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Scorer()
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 4 {
		t.Errorf("scorer dim %d, want 4", s.Dim())
	}
	if _, ok := a.KernelExpansion(); ok {
		t.Error("compiled model reports a kernel expansion; serve would cache rows for it")
	}
	x := []float64{0.1, -0.2, 0.3, 0.4}
	if math.Float64bits(s.ScoreRow(x)) != math.Float64bits(am.ScoreRow(x)) {
		t.Error("scorer diverges from the model's own ScoreRow")
	}
}
