package model_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps/modelzoo"
	"repro/internal/linalg"
	"repro/internal/model"
)

// The golden files freeze schema v1: artifacts written by the current
// code at the time the schema was introduced, committed to testdata/.
// Future schema bumps must keep loading them (backward compatibility is
// the whole point of the version field). Regenerate only when
// intentionally re-baselining:
//
//	go test ./internal/model -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden artifacts from current code")

const goldenSeed = 42

// goldenExpect pins each golden artifact's probe set and the exact
// predictions the loaded model must produce. encoding/json round-trips
// float64 exactly, so == comparison is sound.
type goldenExpect struct {
	Kind        model.Kind  `json:"kind"`
	Checksum    string      `json:"payload_sha256"`
	ProbeCols   int         `json:"probe_cols"`
	Probes      [][]float64 `json:"probes"`
	Predictions []float64   `json:"predictions"`
}

func goldenPath(kind model.Kind) string {
	return filepath.Join("testdata", "golden_v1_"+string(kind)+".json")
}

func goldenExpectPath() string {
	return filepath.Join("testdata", "golden_v1_expect.json")
}

func TestGoldenArtifactsLoad(t *testing.T) {
	if *updateGolden {
		writeGolden(t)
	}

	raw, err := os.ReadFile(goldenExpectPath())
	if err != nil {
		t.Fatalf("read expectations (run with -update-golden to create): %v", err)
	}
	var expects []goldenExpect
	if err := json.Unmarshal(raw, &expects); err != nil {
		t.Fatalf("parse expectations: %v", err)
	}
	if len(expects) != len(model.Kinds()) {
		t.Fatalf("expectations cover %d kinds, want %d", len(expects), len(model.Kinds()))
	}

	for _, exp := range expects {
		exp := exp
		t.Run(string(exp.Kind), func(t *testing.T) {
			art, err := model.Load(goldenPath(exp.Kind))
			if err != nil {
				t.Fatalf("golden v1 artifact no longer loads: %v", err)
			}
			if art.Envelope.SchemaVersion != 1 {
				t.Fatalf("golden artifact schema version = %d, want 1", art.Envelope.SchemaVersion)
			}
			if art.Envelope.Checksum != exp.Checksum {
				t.Fatalf("golden checksum drifted: file %s, expectations %s",
					art.Envelope.Checksum, exp.Checksum)
			}
			scorer, err := art.Scorer()
			if err != nil {
				t.Fatalf("scorer: %v", err)
			}
			probes := linalg.NewMatrix(len(exp.Probes), exp.ProbeCols)
			for i, row := range exp.Probes {
				copy(probes.Row(i), row)
			}
			for i := 0; i < probes.Rows; i++ {
				got := scorer.ScoreRow(probes.Row(i))
				if got != exp.Predictions[i] {
					t.Fatalf("probe %d: golden model predicts %v, pinned %v — "+
						"loading a v1 artifact no longer reproduces its training-time predictions",
						i, got, exp.Predictions[i])
				}
			}
			batch := scorer.ScoreBatch(probes)
			for i := range batch {
				if batch[i] != exp.Predictions[i] {
					t.Fatalf("probe %d: batch path %v != pinned %v", i, batch[i], exp.Predictions[i])
				}
			}
		})
	}
}

// writeGolden regenerates the committed artifacts and expectations.
func writeGolden(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	trained, err := modelzoo.TrainAll(goldenSeed, 48, 8)
	if err != nil {
		t.Fatal(err)
	}
	var expects []goldenExpect
	for _, tr := range trained {
		art, err := model.Save(goldenPath(tr.Kind), tr.Model, model.Meta{
			Name: "golden-" + string(tr.Kind),
			Seed: goldenSeed,
		})
		if err != nil {
			t.Fatalf("%s: %v", tr.Kind, err)
		}
		probes := make([][]float64, tr.Probes.Rows)
		for i := range probes {
			probes[i] = append([]float64(nil), tr.Probes.Row(i)...)
		}
		scorer, err := art.Scorer()
		if err != nil {
			t.Fatalf("%s: %v", tr.Kind, err)
		}
		preds := make([]float64, tr.Probes.Rows)
		for i := range preds {
			preds[i] = scorer.ScoreRow(tr.Probes.Row(i))
		}
		expects = append(expects, goldenExpect{
			Kind:        tr.Kind,
			Checksum:    art.Envelope.Checksum,
			ProbeCols:   tr.Probes.Cols,
			Probes:      probes,
			Predictions: preds,
		})
	}
	data, err := json.MarshalIndent(expects, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenExpectPath(), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrote %d golden artifacts + expectations", len(trained))
}
