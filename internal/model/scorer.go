package model

import (
	"fmt"

	"repro/internal/gp"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/rules"
	"repro/internal/svm"
	"repro/internal/tree"
)

// Scorer is the uniform prediction surface over every persistable model
// kind, used by the inference server and the CLIs. ScoreRow returns the
// model's primary scalar output for one sample — the predicted class
// label for SVC / tree / rule-set classifiers, the posterior or fitted
// mean for GP / ridge regressors, and the signed decision value for the
// one-class detector (negative = novel). ScoreBatch scores every row of
// a matrix through the model's amortized batch path and is bit-identical
// to calling ScoreRow per row.
type Scorer interface {
	ScoreRow(x []float64) float64
	ScoreBatch(x *linalg.Matrix) []float64
	// ScoreBatchInto is ScoreBatch writing into a caller-provided slice
	// of length x.Rows (panics on length mismatch) and returning it. It
	// is the zero-allocation serving path: every model kind routes
	// through pooled columnar scratch, so a steady-state call allocates
	// nothing (alloc_test.go pins this at 0 allocs/op).
	ScoreBatchInto(x *linalg.Matrix, out []float64) []float64
	// Dim returns the expected input width (0 when the model accepts any
	// width, e.g. a rule set with no conditions).
	Dim() int
}

// KernelExpansion exposes the shared structure of the kernel models —
// score(x) = combine(k(x, basis_1), …, k(x, basis_m)) — so the serving
// layer can cache kernel rows across requests and amortize Gram
// evaluation across a batch. Combine reproduces the model's serial
// accumulation order exactly, so combining a cached or batch-computed
// row is bit-identical to the model's own Predict/Decision.
type KernelExpansion struct {
	Basis *linalg.Matrix // support vectors / training inputs
	// Combine folds one kernel row k(x, basis_*) into the final score.
	Combine func(row []float64) float64
	// Eval computes one kernel row into dst (len == Basis.Rows).
	Eval func(x []float64, dst []float64)
}

// Scorer returns the prediction surface for the artifact's model kind.
func (a *Artifact) Scorer() (Scorer, error) {
	switch m := a.Model.(type) {
	case *ApproxModel:
		// Compiled fast path: one dot product through the feature map, no
		// kernel expansion. Checked first so a compiled artifact can never
		// fall through to an exact-kind scorer.
		return approxScorer{m}, nil
	case *svm.SVC:
		return svcScorer{m}, nil
	case *svm.OneClass:
		return oneClassScorer{m}, nil
	case *linear.Regression:
		return ridgeScorer{m}, nil
	case *gp.Regressor:
		return gpScorer{m}, nil
	case *tree.Tree:
		return treeScorer{m, a.Envelope.Features}, nil
	case *rules.RuleSet:
		return ruleSetScorer{m, a.Envelope.Features}, nil
	default:
		return nil, fmt.Errorf("%w: no scorer for %T", ErrKind, a.Model)
	}
}

// KernelExpansion returns the kernel-row structure of the model, or
// false for the non-kernel kinds (ridge, tree, rule set) and for
// compiled approx-linear models — a compiled model has no per-basis
// kernel rows to cache, so the serving layer's kernel-row LRU is
// skipped entirely.
func (a *Artifact) KernelExpansion() (*KernelExpansion, bool) {
	switch m := a.Model.(type) {
	case *svm.SVC:
		return &KernelExpansion{
			Basis: m.SV,
			Combine: func(row []float64) float64 {
				s := m.B
				for j, alpha := range m.Alpha {
					s += alpha * row[j]
				}
				if s >= 0 {
					return m.Classes()[1]
				}
				return m.Classes()[0]
			},
			Eval: kernelRowEval(m.K.Eval, m.SV),
		}, true
	case *svm.OneClass:
		return &KernelExpansion{
			Basis: m.SV,
			Combine: func(row []float64) float64 {
				s := -m.Rho
				for j, alpha := range m.Alpha {
					s += alpha * row[j]
				}
				return s
			},
			Eval: kernelRowEval(m.K.Eval, m.SV),
		}, true
	case *gp.Regressor:
		return &KernelExpansion{
			Basis: m.X,
			Combine: func(row []float64) float64 {
				return m.Mean() + linalg.Dot(row, m.Alpha())
			},
			Eval: kernelRowEval(m.K.Eval, m.X),
		}, true
	default:
		return nil, false
	}
}

func kernelRowEval(eval func(a, b []float64) float64, basis *linalg.Matrix) func(x, dst []float64) {
	return func(x, dst []float64) {
		for j := 0; j < basis.Rows; j++ {
			dst[j] = eval(x, basis.Row(j))
		}
	}
}

type approxScorer struct{ m *ApproxModel }

func (s approxScorer) ScoreRow(x []float64) float64          { return s.m.ScoreRow(x) }
func (s approxScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.ScoreBatch(x) }
func (s approxScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.ScoreBatchInto(x, out)
}
func (s approxScorer) Dim() int { return s.m.Lin.Map.InputDim() }

type svcScorer struct{ m *svm.SVC }

func (s svcScorer) ScoreRow(x []float64) float64          { return s.m.Predict(x) }
func (s svcScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.PredictBatch(x) }
func (s svcScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.PredictBatchInto(x, out)
}
func (s svcScorer) Dim() int { return s.m.SV.Cols }

type oneClassScorer struct{ m *svm.OneClass }

func (s oneClassScorer) ScoreRow(x []float64) float64          { return s.m.Decision(x) }
func (s oneClassScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.DecisionBatch(x) }
func (s oneClassScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.DecisionBatchInto(x, out)
}
func (s oneClassScorer) Dim() int { return s.m.SV.Cols }

type ridgeScorer struct{ m *linear.Regression }

func (s ridgeScorer) ScoreRow(x []float64) float64          { return s.m.Predict(x) }
func (s ridgeScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.PredictBatch(x) }
func (s ridgeScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.PredictBatchInto(x, out)
}
func (s ridgeScorer) Dim() int { return len(s.m.W) }

type gpScorer struct{ m *gp.Regressor }

func (s gpScorer) ScoreRow(x []float64) float64          { return s.m.Predict(x) }
func (s gpScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.PredictBatch(x) }
func (s gpScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.PredictBatchInto(x, out)
}
func (s gpScorer) Dim() int { return s.m.X.Cols }

type treeScorer struct {
	m   *tree.Tree
	dim int
}

func (s treeScorer) ScoreRow(x []float64) float64          { return s.m.Predict(x) }
func (s treeScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.PredictBatch(x) }
func (s treeScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.PredictBatchInto(x, out)
}
func (s treeScorer) Dim() int { return s.dim }

type ruleSetScorer struct {
	m   *rules.RuleSet
	dim int
}

func (s ruleSetScorer) ScoreRow(x []float64) float64          { return s.m.Predict(x) }
func (s ruleSetScorer) ScoreBatch(x *linalg.Matrix) []float64 { return s.m.PredictBatch(x) }
func (s ruleSetScorer) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	return s.m.PredictBatchInto(x, out)
}
func (s ruleSetScorer) Dim() int { return s.dim }
