package model

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/kernel/approx"
	"repro/internal/linalg"
	"repro/internal/svm"
)

// Compiled approx-linear models. A trained kernel model (SVC, one-class
// SVM, GP) pays O(n·d) per prediction — a kernel evaluation against
// every support vector / training row. CompileApprox collapses that
// expansion through an approximate feature map (internal/kernel/approx)
// into a single weight vector at save time, so the served model scores
// in O(D·d) regardless of training-set size. The compiled form persists
// in the same schema-v1 envelope with the optional "approx" field set;
// artifacts without the field are untouched, so every pre-existing
// file still loads byte-identically.

// Approx method names accepted by ApproxSpec and ParseApproxSpec.
const (
	ApproxRFF     = "rff"     // random Fourier features (RBF kernels only)
	ApproxNystrom = "nystrom" // landmark approximation (any PSD kernel)
)

// ApproxSpec describes a compiled feature map: the method, its output
// dimension (D for RFF, landmark count m for Nyström), and the seed the
// map was drawn from. It is persisted in the envelope, so a compiled
// artifact is reproducible from (source model, spec).
type ApproxSpec struct {
	Method string `json:"method"`
	Dim    int    `json:"dim"`
	Seed   int64  `json:"seed"`
}

func (s ApproxSpec) String() string { return fmt.Sprintf("%s:%d", s.Method, s.Dim) }

// ParseApproxSpec parses the CLI form "rff:D" or "nystrom:m".
func ParseApproxSpec(arg string, seed int64) (ApproxSpec, error) {
	method, dims, ok := strings.Cut(arg, ":")
	if !ok {
		return ApproxSpec{}, fmt.Errorf("model: approx spec %q: want rff:D or nystrom:m", arg)
	}
	if method != ApproxRFF && method != ApproxNystrom {
		return ApproxSpec{}, fmt.Errorf("model: unknown approx method %q (want rff or nystrom)", method)
	}
	dim, err := strconv.Atoi(dims)
	if err != nil || dim <= 0 || dim > approx.MaxDim {
		return ApproxSpec{}, fmt.Errorf("model: approx dimension %q: want 1..%d", dims, approx.MaxDim)
	}
	return ApproxSpec{Method: method, Dim: dim, Seed: seed}, nil
}

// ApproxModel is a kernel model compiled into an O(d) linear scorer:
// Score(x) = W·z(x) + bias through the spec's feature map, plus the
// source kind's output mapping (sign → class label for SVC). It is a
// persistable model kind-mate: Encode stores it under the source kind
// with Envelope.Approx set.
type ApproxModel struct {
	SourceKind Kind        // svc | oneclass | gp
	Spec       ApproxSpec  // the map that was compiled (Dim is the actual dim)
	Kernel     *KernelSpec // the source kernel (rebuilds Nyström, provenance for RFF)
	Lin        *approx.Linear
	Classes    [2]float64 // SVC label mapping; unused otherwise
}

// Decision returns the raw compiled score W·z(x)+bias — the margin for
// SVC, the novelty decision value for one-class, the posterior mean for
// GP. This is the quantity error bounds are stated against.
func (m *ApproxModel) Decision(x []float64) float64 { return m.Lin.Score(x) }

// ScoreRow returns the source kind's primary output (see Scorer).
func (m *ApproxModel) ScoreRow(x []float64) float64 {
	s := m.Lin.Score(x)
	if m.SourceKind == KindSVC {
		if s >= 0 {
			return m.Classes[1]
		}
		return m.Classes[0]
	}
	return s
}

// ScoreBatch scores every row of x, bit-identical to ScoreRow per row.
func (m *ApproxModel) ScoreBatch(x *linalg.Matrix) []float64 {
	return m.ScoreBatchInto(x, make([]float64, x.Rows))
}

// ScoreBatchInto is ScoreBatch writing into a caller-provided slice of
// length x.Rows, delegating the raw scores to the compiled scorer's
// zero-alloc batch path before applying the source kind's output
// mapping in place.
func (m *ApproxModel) ScoreBatchInto(x *linalg.Matrix, out []float64) []float64 {
	out = m.Lin.ScoreBatchInto(x, out)
	if m.SourceKind == KindSVC {
		for i, s := range out {
			if s >= 0 {
				out[i] = m.Classes[1]
			} else {
				out[i] = m.Classes[0]
			}
		}
	}
	return out
}

// CompileApprox compiles a fitted kernel model into an approx-linear
// scorer. RFF accepts only the RBF kernel (it approximates the Gaussian
// spectral measure); Nyström accepts any persistable kernel. The
// returned model's Spec.Dim is the dimension actually used (Nyström
// clamps m to the basis size).
func CompileApprox(m any, spec ApproxSpec) (*ApproxModel, error) {
	switch mm := m.(type) {
	case *svm.SVC:
		return compileExpansion(KindSVC, mm.K, mm.SV, mm.Alpha, mm.B, mm.Classes(), spec)
	case *svm.OneClass:
		return compileExpansion(KindOneClass, mm.K, mm.SV, mm.Alpha, -mm.Rho, [2]float64{}, spec)
	case *gp.Regressor:
		return compileExpansion(KindGP, mm.K, mm.X, mm.Alpha(), mm.Mean(), [2]float64{}, spec)
	default:
		return nil, fmt.Errorf("%w: cannot compile %T to approx-linear", ErrKind, m)
	}
}

// compileExpansion builds the feature map for the source kernel and
// collapses the expansion Σ α_i k(·, basis_i) + bias through it.
func compileExpansion(kind Kind, k kernel.Kernel, basis *linalg.Matrix,
	alpha []float64, bias float64, classes [2]float64, spec ApproxSpec) (*ApproxModel, error) {
	kspec, err := SpecOf(k)
	if err != nil {
		return nil, err
	}
	var fm approx.FeatureMap
	switch spec.Method {
	case ApproxRFF:
		rbf, ok := k.(kernel.RBF)
		if !ok {
			return nil, fmt.Errorf("%w: rff requires an RBF kernel, model uses %s",
				approx.ErrKernel, k.Name())
		}
		fm, err = approx.NewRFF(rbf.Gamma, basis.Cols, spec.Dim, spec.Seed)
	case ApproxNystrom:
		fm, err = approx.NewNystrom(k, basis, spec.Dim, spec.Seed)
	default:
		return nil, fmt.Errorf("%w: unknown approx method %q", ErrInvalid, spec.Method)
	}
	if err != nil {
		return nil, err
	}
	lin, err := approx.Compile(fm, basis, alpha, bias)
	if err != nil {
		return nil, err
	}
	spec.Dim = fm.Dim() // record the dimension actually drawn
	return &ApproxModel{
		SourceKind: kind, Spec: spec, Kernel: kspec, Lin: lin, Classes: classes,
	}, nil
}
