package maps

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/linalg"
	"repro/internal/litho"
)

func testCfg() LabelConfig {
	var c LabelConfig
	c.Defaults()
	return c
}

func transposeWindow(w *litho.Window) *litho.Window {
	out := litho.NewWindow(w.N)
	for y := 0; y < w.N; y++ {
		for x := 0; x < w.N; x++ {
			out.Set(y, x, w.At(x, y))
		}
	}
	return out
}

func TestTileMapTranspose(t *testing.T) {
	m := NewTileMap(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	tr := m.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !reflect.DeepEqual(tr.Transpose(), m) {
		t.Fatal("double transpose is not the identity")
	}
}

// TestRegionFeaturesTransposeInvariant pins the structural property the
// conformance suite builds on: every tile feature is bit-identical
// under region transpose.
func TestRegionFeaturesTransposeInvariant(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(5))
	s := cfg.RegionSize()
	for trial := 0; trial < 20; trial++ {
		region := make([]float64, s*s)
		for i := range region {
			if rng.Float64() < 0.4 {
				region[i] = 1
			}
		}
		a := RegionFeatures(region, cfg)
		b := RegionFeatures(TransposeRegion(region, s), cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: features differ under transpose:\n%v\n%v", trial, a, b)
		}
	}
}

// TestExtractRegionCommutesWithTranspose: the region of tile (j,i) in
// the transposed window is the transposed region of tile (i,j).
func TestExtractRegionCommutesWithTranspose(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(6))
	w := GenWindows(rng, 1, cfg.N)[0]
	wt := transposeWindow(w)
	g := cfg.Grid()
	s := cfg.RegionSize()
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			want := TransposeRegion(ExtractRegion(w, i, j, cfg), s)
			got := ExtractRegion(wt, j, i, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tile (%d,%d): transposed-window region mismatch", i, j)
			}
		}
	}
}

func TestFeatureNamesMatchVectorLength(t *testing.T) {
	cfg := testCfg()
	w := litho.NewWindow(cfg.N)
	w.FillRect(10, 10, 30, 30)
	f := TileFeatures(w, 0, 0, cfg)
	if len(f) != len(FeatureNames(cfg)) {
		t.Fatalf("feature vector length %d != %d names", len(f), len(FeatureNames(cfg)))
	}
}

func TestTruthMapsBasics(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(7))
	w := GenWindows(rng, 1, cfg.N)[0]
	score, weak, err := TruthMaps(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Grid()
	if score.G != g || weak.G != g {
		t.Fatalf("grid %d/%d, want %d", score.G, weak.G, g)
	}
	anyContour := false
	for t_ := range score.Vals {
		v, f := score.Vals[t_], weak.Vals[t_]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("tile %d: score %v is not a finite non-negative value", t_, v)
		}
		if f < 0 || f > 1 {
			t.Fatalf("tile %d: weak fraction %v outside [0,1]", t_, f)
		}
		if v > 0 {
			anyContour = true
		}
	}
	if !anyContour {
		t.Fatal("no tile saw any print contour — generator or labeling broken")
	}
	// An empty window has no contour at all: every tile labels 0.
	empty := litho.NewWindow(cfg.N)
	s0, w0, err := TruthMaps(empty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for t_ := range s0.Vals {
		if s0.Vals[t_] != 0 || w0.Vals[t_] != 0 {
			t.Fatalf("empty window labeled nonzero at tile %d", t_)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	c := LabelConfig{N: 60, Tile: 16}
	c.Defaults()
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for 60 % 16 != 0")
	}
	c = testCfg()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Grid() != 4 || c.RegionSize() != 24 {
		t.Fatalf("grid %d region %d, want 4 and 24", c.Grid(), c.RegionSize())
	}
}

func TestSplitSamplesIsSeededAndDisjoint(t *testing.T) {
	cfg := testCfg()
	samples, err := BuildSamples(9, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr1, te1 := SplitSamples(4, samples, 0.7)
	tr2, te2 := SplitSamples(4, samples, 0.7)
	if !reflect.DeepEqual(tr1, tr2) || !reflect.DeepEqual(te1, te2) {
		t.Fatal("same split seed produced different splits")
	}
	if len(tr1)+len(te1) != len(samples) || len(te1) == 0 {
		t.Fatalf("split sizes %d+%d don't cover %d samples", len(tr1), len(te1), len(samples))
	}
	seen := map[*Sample]bool{}
	for _, s := range tr1 {
		seen[s] = true
	}
	for _, s := range te1 {
		if seen[s] {
			t.Fatal("a window appears in both train and test")
		}
	}
	tr3, _ := SplitSamples(5, samples, 0.7)
	if reflect.DeepEqual(tr1, tr3) {
		t.Fatal("different split seeds produced the same split")
	}
}

// TestMapModelEndToEnd trains all three kinds on a small corpus and
// checks the learned maps beat the trivial predict-zero baseline on
// RMSE (regression kinds) and produce sane PR values.
func TestMapModelEndToEnd(t *testing.T) {
	cfg := testCfg()
	samples, err := BuildSamples(11, 24, cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitSamples(3, samples, 0.7)
	td, err := TileDataset(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	truth := make([]*TileMap, len(test))
	for i, s := range test {
		truth[i] = s.Weak
	}
	zero := make([]*TileMap, len(test))
	for i := range zero {
		zero[i] = NewTileMap(cfg.Grid())
	}
	baseline := MapRMSE(zero, truth)

	for _, kind := range []ModelKind{KindRidge, KindGP, KindSVC} {
		m, err := FitMapModel(td, FitConfig{Kind: kind, Label: cfg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		pred := make([]*TileMap, len(test))
		for i, s := range test {
			pm, err := m.PredictMap(s.Window)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			pred[i] = pm
		}
		p, r := HotspotPR(pred, truth, m.HotThreshold(), cfg.HotWeak)
		if p < 0 || p > 1 || r < 0 || r > 1 {
			t.Fatalf("%s: precision %v recall %v outside [0,1]", kind, p, r)
		}
		if kind == KindSVC {
			continue // decision margins are not on the weak-fraction scale
		}
		rmse := MapRMSE(pred, truth)
		if rmse >= baseline {
			t.Fatalf("%s: map RMSE %.4f does not beat zero baseline %.4f", kind, rmse, baseline)
		}
	}
}

// TestScoreFeaturesRowIndependent: permuting probe rows permutes the
// scores bit-identically (the conformance tile-permutation relation).
func TestScoreFeaturesRowIndependent(t *testing.T) {
	cfg := testCfg()
	samples, err := BuildSamples(13, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	td, err := TileDataset(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitMapModel(td, FitConfig{Kind: KindRidge, Label: cfg})
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Grid()
	s := cfg.RegionSize()
	regions := linalg.NewMatrix(g*g, s*s)
	w := samples[0].Window
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			copy(regions.Row(i*g+j), ExtractRegion(w, i, j, cfg))
		}
	}
	base := m.ScoreRegions(regions)

	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(regions.Rows)
	shuffled := linalg.NewMatrix(regions.Rows, regions.Cols)
	for i, p := range perm {
		copy(shuffled.Row(i), regions.Row(p))
	}
	got := m.ScoreRegions(shuffled)
	for i, p := range perm {
		if got[i] != base[p] {
			t.Fatalf("row %d: permuted score %v != base score %v (bit-exact required)", i, got[i], base[p])
		}
	}
}

// TestPredictMapTransposesWithMask: the end-to-end form of the
// transpose relation — predicting on the transposed mask yields the
// transposed map, bit-identically.
func TestPredictMapTransposesWithMask(t *testing.T) {
	cfg := testCfg()
	samples, err := BuildSamples(19, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	td, err := TileDataset(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ModelKind{KindRidge, KindGP} {
		m, err := FitMapModel(td, FitConfig{Kind: kind, Label: cfg})
		if err != nil {
			t.Fatal(err)
		}
		w := samples[1].Window
		pm, err := m.PredictMap(w)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := m.PredictMap(transposeWindow(w))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt, pm.Transpose()) {
			t.Fatalf("%s: predicted map of transposed mask is not the transposed map", kind)
		}
	}
}

// TestRecallSweepMonotone: recall never increases as the hotspot
// threshold rises.
func TestRecallSweepMonotone(t *testing.T) {
	cfg := testCfg()
	rng := rand.New(rand.NewSource(23))
	g := cfg.Grid()
	pred := make([]*TileMap, 6)
	truth := make([]*TileMap, 6)
	for k := range pred {
		pred[k], truth[k] = NewTileMap(g), NewTileMap(g)
		for t_ := range pred[k].Vals {
			pred[k].Vals[t_] = rng.Float64()
			truth[k].Vals[t_] = rng.Float64()
		}
	}
	ths := []float64{0, 0.1, 0.25, 0.4, 0.6, 0.8, 1.01}
	rec := RecallSweep(pred, truth, 0.5, ths)
	for i := 1; i < len(rec); i++ {
		if rec[i] > rec[i-1] {
			t.Fatalf("recall rose from %v to %v as threshold went %v→%v", rec[i-1], rec[i], ths[i-1], ths[i])
		}
	}
	if rec[0] != 1 {
		t.Fatalf("recall at threshold 0 is %v, want 1 (every tile predicted hot)", rec[0])
	}
}

func TestHotspotPRDegenerate(t *testing.T) {
	g := 2
	pred := []*TileMap{NewTileMap(g)}
	truth := []*TileMap{NewTileMap(g)}
	p, r := HotspotPR(pred, truth, 0.5, 0.5)
	if p != 1 || r != 1 {
		t.Fatalf("degenerate PR = %v/%v, want vacuous 1/1", p, r)
	}
}
