// Package maps implements the spatial map-regression workload the
// ML4EDA benchmark suites (CircuitNet, EDALearn) converge on: tile a
// layout window into a k×k grid and predict a per-tile
// variability/hotspot map from layout-tile features, replacing the
// golden lithography simulation one tile at a time.
//
// The substrate is internal/litho: the golden reference runs the aerial
// image model once per window and measures edge-placement sensitivity
// along the print contour; this package bins those contour statistics
// into per-tile truth maps, extracts mask-only features per tile
// (density, halo density, edge-transition rate, two-scale density
// histograms — the knowledge-in-the-kernel representation of the paper,
// now per tile), and trains any of the repo's learners to predict the
// map. Map-level metrics (per-tile RMSE, hotspot precision/recall at a
// threshold) and a seeded window-level train/test split make the
// workload a benchmark task, exported as a versioned dataset by
// internal/datasets.
//
// Two structural properties the conformance suite pins:
//
//   - Tile features are transpose-invariant: transposing the mask maps
//     tile (i,j) onto tile (j,i) with bit-identical features, so a
//     fitted model's predicted map transposes exactly with the mask.
//   - Tile scoring is row-independent: predicting tiles in any order
//     yields bit-identical per-tile values.
package maps

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/litho"
)

// LabelConfig shapes the tiling, the feature extraction, and the golden
// labeling of one window.
type LabelConfig struct {
	N        int     `json:"n"`         // window size in pixels, default 64
	Tile     int     `json:"tile"`      // tile size in pixels, default 16
	Halo     int     `json:"halo"`      // feature context margin in pixels, default 4
	Sigma    float64 `json:"sigma"`     // optical kernel sigma, default 2.5
	MinSlope float64 `json:"min_slope"` // weak-edge slope threshold, default 0.08
	HotWeak  float64 `json:"hot_weak"`  // weak-edge fraction above which a tile is a hotspot, default 0.25
	Bins     int     `json:"bins"`      // histogram bins per density scale, default 6
}

// Defaults fills zero fields with the standard benchmark settings.
func (c *LabelConfig) Defaults() {
	if c.N <= 0 {
		c.N = 64
	}
	if c.Tile <= 0 {
		c.Tile = 16
	}
	if c.Halo <= 0 {
		c.Halo = 4
	}
	if c.Sigma <= 0 {
		c.Sigma = 2.5
	}
	if c.MinSlope <= 0 {
		c.MinSlope = 0.08
	}
	if c.HotWeak <= 0 {
		c.HotWeak = 0.25
	}
	if c.Bins <= 0 {
		c.Bins = 6
	}
}

// Validate checks the geometry: the tile grid must cover the window
// exactly and the feature region must divide into both histogram block
// scales.
func (c LabelConfig) Validate() error {
	if c.N%c.Tile != 0 {
		return fmt.Errorf("maps: window %d not divisible by tile %d", c.N, c.Tile)
	}
	s := c.RegionSize()
	if s%4 != 0 || s%8 != 0 {
		return fmt.Errorf("maps: region size %d must divide into 4- and 8-pixel blocks", s)
	}
	return nil
}

// Grid returns the tiles per side.
func (c LabelConfig) Grid() int { return c.N / c.Tile }

// RegionSize returns the side of the zero-padded feature region
// (tile plus halo on every side).
func (c LabelConfig) RegionSize() int { return c.Tile + 2*c.Halo }

// TileMap is a G×G grid of per-tile values; Vals[i*G+j] is tile row i
// (y direction), column j (x direction).
type TileMap struct {
	G    int
	Vals []float64
}

// NewTileMap allocates a zero map.
func NewTileMap(g int) *TileMap { return &TileMap{G: g, Vals: make([]float64, g*g)} }

// At returns the value of tile (i, j).
func (m *TileMap) At(i, j int) float64 { return m.Vals[i*m.G+j] }

// Set writes the value of tile (i, j).
func (m *TileMap) Set(i, j int, v float64) { m.Vals[i*m.G+j] = v }

// Clone deep-copies the map.
func (m *TileMap) Clone() *TileMap {
	out := NewTileMap(m.G)
	copy(out.Vals, m.Vals)
	return out
}

// Transpose returns the map with tile (i,j) and (j,i) swapped — the
// oracle of the mask-transpose metamorphic relation.
func (m *TileMap) Transpose() *TileMap {
	out := NewTileMap(m.G)
	for i := 0; i < m.G; i++ {
		for j := 0; j < m.G; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// TruthMaps runs the golden lithography model once on the window and
// bins the contour statistics per tile: Score is the mean inverse image
// slope over the tile's contour pixels (edge-placement sensitivity,
// higher = worse; 0 for tiles with no print contour), Weak is the
// fraction of the tile's contour pixels below the MinSlope threshold.
func TruthMaps(w *litho.Window, cfg LabelConfig) (score, weak *TileMap, err error) {
	cfg.Defaults()
	if w.N != cfg.N {
		return nil, nil, fmt.Errorf("maps: window size %d does not match config %d", w.N, cfg.N)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	img := litho.AerialImage(w, cfg.Sigma)
	g := cfg.Grid()
	n := w.N
	score, weak = NewTileMap(g), NewTileMap(g)
	sumInv := make([]float64, g*g)
	weakN := make([]float64, g*g)
	contour := make([]float64, g*g)
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			c := img[y*n+x]
			lo, hi := c, c
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				v := img[(y+d[1])*n+x+d[0]]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo > litho.PrintThreshold || hi < litho.PrintThreshold {
				continue
			}
			gx := (img[y*n+x+1] - img[y*n+x-1]) / 2
			gy := (img[(y+1)*n+x] - img[(y-1)*n+x]) / 2
			slope := math.Hypot(gx, gy)
			t := (y/cfg.Tile)*g + x/cfg.Tile
			contour[t]++
			sumInv[t] += 1 / (slope + 1e-6)
			if slope < cfg.MinSlope {
				weakN[t]++
			}
		}
	}
	for t := range contour {
		if contour[t] > 0 {
			score.Vals[t] = sumInv[t] / contour[t]
			weak.Vals[t] = weakN[t] / contour[t]
		}
	}
	return score, weak, nil
}

// ExtractRegion copies the zero-padded feature region of tile (i, j):
// the tile plus a Halo-pixel margin on every side, with pixels outside
// the window read as empty (no metal). Zero padding keeps the region a
// fixed size at the window boundary and commutes with mask transpose.
func ExtractRegion(w *litho.Window, i, j int, cfg LabelConfig) []float64 {
	cfg.Defaults()
	s := cfg.RegionSize()
	region := make([]float64, s*s)
	y0 := i*cfg.Tile - cfg.Halo
	x0 := j*cfg.Tile - cfg.Halo
	for ry := 0; ry < s; ry++ {
		y := y0 + ry
		if y < 0 || y >= w.N {
			continue
		}
		for rx := 0; rx < s; rx++ {
			x := x0 + rx
			if x < 0 || x >= w.N {
				continue
			}
			region[ry*s+rx] = w.At(x, y)
		}
	}
	return region
}

// TransposeRegion transposes a flattened s×s region in place-free form —
// the probe-level form of the mask-transpose metamorphic transform.
func TransposeRegion(region []float64, s int) []float64 {
	out := make([]float64, len(region))
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			out[x*s+y] = region[y*s+x]
		}
	}
	return out
}

// FeatureNames lists, in order, the per-tile features.
func FeatureNames(cfg LabelConfig) []string {
	cfg.Defaults()
	names := []string{
		"tile_density", // drawn fraction of the tile proper
		"halo_density", // drawn fraction of the halo ring
		"edge_rate",    // mask transitions per adjacent pixel pair in the region
	}
	for _, block := range []int{4, 8} {
		for b := 0; b < cfg.Bins; b++ {
			names = append(names, fmt.Sprintf("dens%d_bin%d", block, b))
		}
	}
	return names
}

// RegionFeatures computes the per-tile feature vector from a flattened
// region (as produced by ExtractRegion). Every feature is a function of
// pixel sums and counts, so the vector is bit-identical under region
// transpose — the invariance the conformance suite pins.
func RegionFeatures(region []float64, cfg LabelConfig) []float64 {
	cfg.Defaults()
	s := cfg.RegionSize()
	h := cfg.Halo
	feat := make([]float64, 0, 3+2*cfg.Bins)

	// Tile and halo densities. Sums of 0/1 pixels are exact integers,
	// and transposing the region permutes the summands of the same
	// integer totals.
	var tileSum, haloSum float64
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			v := region[y*s+x]
			if y >= h && y < s-h && x >= h && x < s-h {
				tileSum += v
			} else {
				haloSum += v
			}
		}
	}
	tileArea := float64(cfg.Tile * cfg.Tile)
	haloArea := float64(s*s) - tileArea
	feat = append(feat, tileSum/tileArea, haloSum/haloArea)

	// Edge rate: horizontal plus vertical 0↔1 transitions. Transpose
	// swaps the two counts; the total is invariant.
	trans := 0.0
	for y := 0; y < s; y++ {
		for x := 0; x+1 < s; x++ {
			if region[y*s+x] != region[y*s+x+1] {
				trans++
			}
		}
	}
	for x := 0; x < s; x++ {
		for y := 0; y+1 < s; y++ {
			if region[y*s+x] != region[(y+1)*s+x] {
				trans++
			}
		}
	}
	feat = append(feat, trans/float64(2*s*(s-1)))

	// Two-scale local density histograms: the block grid transposes
	// with the region, so the multiset of block densities — and its
	// histogram — is identical.
	for _, block := range []int{4, 8} {
		nb := s / block
		hist := make([]float64, cfg.Bins)
		for by := 0; by < nb; by++ {
			for bx := 0; bx < nb; bx++ {
				sum := 0.0
				for y := by * block; y < (by+1)*block; y++ {
					for x := bx * block; x < (bx+1)*block; x++ {
						sum += region[y*s+x]
					}
				}
				d := sum / float64(block*block)
				b := int(d * float64(cfg.Bins))
				if b >= cfg.Bins {
					b = cfg.Bins - 1
				}
				hist[b]++
			}
		}
		total := float64(nb * nb)
		for b := range hist {
			hist[b] /= total
		}
		feat = append(feat, hist...)
	}
	return feat
}

// TileFeatures extracts the feature vector of tile (i, j) directly from
// a window.
func TileFeatures(w *litho.Window, i, j int, cfg LabelConfig) []float64 {
	return RegionFeatures(ExtractRegion(w, i, j, cfg), cfg)
}

// Sample is one labeled window: the mask plus its golden truth maps.
type Sample struct {
	Window *litho.Window
	Score  *TileMap // mean inverse edge slope per tile
	Weak   *TileMap // weak-edge fraction per tile (the hotspot score)
}

// GenWindows draws n windows from the varpred population mix (relaxed,
// medium, and aggressive pitches) so both hotspot and benign tiles are
// represented.
func GenWindows(rng *rand.Rand, n int, size int) []*litho.Window {
	if size <= 0 {
		size = 64
	}
	out := make([]*litho.Window, n)
	for i := range out {
		switch rng.Intn(3) {
		case 0: // aggressive: near the resolution limit
			out[i] = litho.Generate(rng, litho.GenConfig{N: size, MinWidth: 2, MaxWidth: 3, MinSpace: 2, MaxSpace: 4, Jog: 0.3})
		case 1: // medium
			out[i] = litho.Generate(rng, litho.GenConfig{N: size, MinWidth: 3, MaxWidth: 6, MinSpace: 3, MaxSpace: 7, Jog: 0.2})
		default: // relaxed
			out[i] = litho.Generate(rng, litho.GenConfig{N: size, MinWidth: 6, MaxWidth: 10, MinSpace: 8, MaxSpace: 14, Jog: 0.1})
		}
	}
	return out
}

// BuildSamples generates n windows from the seed and labels each with
// the golden model — the expensive step the learned map model replaces.
func BuildSamples(seed int64, n int, cfg LabelConfig) ([]*Sample, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]*Sample, n)
	for i, w := range GenWindows(rng, n, cfg.N) {
		score, weak, err := TruthMaps(w, cfg)
		if err != nil {
			return nil, err
		}
		samples[i] = &Sample{Window: w, Score: score, Weak: weak}
	}
	return samples, nil
}

// SplitSamples splits windows (not tiles) into train and test with a
// seeded shuffle: all tiles of a window land on the same side, so the
// evaluation never scores a tile whose neighbours were trained on.
func SplitSamples(seed int64, samples []*Sample, trainFrac float64) (train, test []*Sample) {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.7
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(samples))
	nTrain := int(trainFrac * float64(len(samples)))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= len(samples) && len(samples) > 1 {
		nTrain = len(samples) - 1
	}
	for k, idx := range perm {
		if k < nTrain {
			train = append(train, samples[idx])
		} else {
			test = append(test, samples[idx])
		}
	}
	return train, test
}

// TileDataset flattens samples into a per-tile dataset: one row per
// tile in row-major tile order per window, features from TileFeatures,
// response = the tile's weak-edge fraction (the hotspot score the map
// model regresses).
func TileDataset(samples []*Sample, cfg LabelConfig) (*dataset.Dataset, error) {
	cfg.Defaults()
	if len(samples) == 0 {
		return nil, errors.New("maps: no samples")
	}
	g := cfg.Grid()
	rows := make([][]float64, 0, len(samples)*g*g)
	y := make([]float64, 0, len(samples)*g*g)
	for _, s := range samples {
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				rows = append(rows, TileFeatures(s.Window, i, j, cfg))
				y = append(y, s.Weak.At(i, j))
			}
		}
	}
	d := dataset.FromRows(rows, y)
	d.Names = FeatureNames(cfg)
	return d, nil
}
