package maps

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/linear"
	"repro/internal/litho"
	"repro/internal/svm"
)

// ModelKind selects the learner behind a map model.
type ModelKind string

const (
	KindRidge ModelKind = "ridge" // closed-form ridge regression on tile features
	KindGP    ModelKind = "gp"    // GP regression, RBF kernel
	KindSVC   ModelKind = "svc"   // hotspot classifier, histogram-intersection kernel
)

// FitConfig shapes FitMapModel. Zero values pick the benchmark defaults.
type FitConfig struct {
	Kind   ModelKind
	Label  LabelConfig
	Lambda float64 // ridge penalty per training row, default 2e-3·n
	Noise  float64 // GP observation noise, default 1e-3
	C      float64 // SVC box constraint, default 2
	Seed   int64   // SVC SMO heuristic seed
}

// MapModel predicts per-tile hotspot scores. Regression kinds predict
// the weak-edge fraction directly; the SVC kind scores tiles by SVM
// decision margin (hotspot threshold 0).
type MapModel struct {
	Kind  ModelKind
	Label LabelConfig

	ridge *linear.Regression
	gp    *gp.Regressor
	svc   *svm.SVC
}

// FitMapModel trains a map model on a per-tile dataset (as produced by
// TileDataset: features per tile, response = weak-edge fraction). For
// the SVC kind the response is binarized at Label.HotWeak before
// training.
func FitMapModel(train *dataset.Dataset, cfg FitConfig) (*MapModel, error) {
	cfg.Label.Defaults()
	if err := cfg.Label.Validate(); err != nil {
		return nil, err
	}
	m := &MapModel{Kind: cfg.Kind, Label: cfg.Label}
	switch cfg.Kind {
	case KindRidge, "":
		m.Kind = KindRidge
		lambda := cfg.Lambda
		if lambda <= 0 {
			lambda = 2e-3 * float64(train.Len())
		}
		r, err := linear.FitRidge(train, lambda)
		if err != nil {
			return nil, err
		}
		m.ridge = r
	case KindGP:
		noise := cfg.Noise
		if noise <= 0 {
			// Tile labels are noisy (identical-looking tiles carry
			// different weak fractions), so the GP needs a wide noise
			// band and a gentle length scale to generalize.
			noise = 0.1
		}
		g, err := gp.Fit(train, gp.Config{
			Kernel: kernel.RBF{Gamma: 0.5 / float64(train.Dim())},
			Noise:  noise,
		})
		if err != nil {
			return nil, err
		}
		m.gp = g
	case KindSVC:
		c := cfg.C
		if c <= 0 {
			c = 2
		}
		binY := make([]float64, len(train.Y))
		for i, v := range train.Y {
			if v >= cfg.Label.HotWeak {
				binY[i] = 1
			}
		}
		bin := &dataset.Dataset{X: train.X, Y: binY, Names: train.Names}
		s, err := svm.FitSVC(bin, kernel.HistogramIntersection{}, svm.SVCConfig{C: c, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		m.svc = s
	default:
		return nil, fmt.Errorf("maps: unknown model kind %q", cfg.Kind)
	}
	return m, nil
}

// HotThreshold is the score above which a predicted tile counts as a
// hotspot: the weak-fraction threshold for regression kinds, the
// decision boundary for the SVC.
func (m *MapModel) HotThreshold() float64 {
	if m.Kind == KindSVC {
		return 0
	}
	return m.Label.HotWeak
}

// ScoreFeatures scores each row of a tile-feature matrix. Rows are
// scored independently, so any row permutation permutes the output
// bit-identically — the invariance the conformance suite pins.
func (m *MapModel) ScoreFeatures(x *linalg.Matrix) []float64 {
	switch m.Kind {
	case KindGP:
		return m.gp.PredictBatch(x)
	case KindSVC:
		return m.svc.DecisionBatch(x)
	default:
		return m.ridge.PredictBatch(x)
	}
}

// ScoreRegions scores rows of raw zero-padded region pixels (flattened
// RegionSize² vectors, as produced by ExtractRegion), extracting the
// tile features internally. This is the probe surface the metamorphic
// transforms operate on: permuting or transposing region rows is pure
// matrix manipulation.
func (m *MapModel) ScoreRegions(regions *linalg.Matrix) []float64 {
	s := m.Label.RegionSize()
	feats := linalg.NewMatrix(regions.Rows, len(FeatureNames(m.Label)))
	for i := 0; i < regions.Rows; i++ {
		row := regions.Row(i)
		if len(row) != s*s {
			panic(fmt.Sprintf("maps: region row has %d pixels, want %d", len(row), s*s))
		}
		copy(feats.Row(i), RegionFeatures(row, m.Label))
	}
	return m.ScoreFeatures(feats)
}

// PredictMap predicts the full tile map of one window.
func (m *MapModel) PredictMap(w *litho.Window) (*TileMap, error) {
	if w.N != m.Label.N {
		return nil, fmt.Errorf("maps: window size %d does not match model config %d", w.N, m.Label.N)
	}
	g := m.Label.Grid()
	x := linalg.NewMatrix(g*g, len(FeatureNames(m.Label)))
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			copy(x.Row(i*g+j), TileFeatures(w, i, j, m.Label))
		}
	}
	out := NewTileMap(g)
	copy(out.Vals, m.ScoreFeatures(x))
	return out, nil
}

// MapRMSE is the per-tile root-mean-square error across a set of
// predicted/truth map pairs.
func MapRMSE(pred, truth []*TileMap) float64 {
	var sum float64
	var n int
	for k := range pred {
		for t := range pred[k].Vals {
			d := pred[k].Vals[t] - truth[k].Vals[t]
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// HotspotPR computes hotspot precision and recall over map pairs: a
// predicted hotspot is a tile with score ≥ predThresh, a true hotspot a
// tile with truth value ≥ truthThresh. Degenerate denominators yield 1
// (no predictions → vacuous precision; no true hotspots → vacuous
// recall).
func HotspotPR(pred, truth []*TileMap, predThresh, truthThresh float64) (precision, recall float64) {
	var tp, fp, fn float64
	for k := range pred {
		for t := range pred[k].Vals {
			p := pred[k].Vals[t] >= predThresh
			a := truth[k].Vals[t] >= truthThresh
			switch {
			case p && a:
				tp++
			case p && !a:
				fp++
			case !p && a:
				fn++
			}
		}
	}
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	return precision, recall
}

// RecallSweep evaluates hotspot recall at each prediction threshold.
// Raising the threshold can only shrink the predicted-hotspot set, so
// recall is non-increasing in the threshold — the monotonicity the
// conformance suite asserts.
func RecallSweep(pred, truth []*TileMap, truthThresh float64, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		_, out[i] = HotspotPR(pred, truth, th, truthThresh)
	}
	return out
}
