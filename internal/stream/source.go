package stream

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/isa"
	"repro/internal/mfgtest"
)

// Candidate is one unit offered to the loop: its position in the
// stream and the feature vector the novelty filter scores. The payload
// (the ISA program or chip behind the features) stays inside the
// source; the loop only ever simulates the candidate it just drew.
type Candidate struct {
	Seq      int // position in the stream, 0-based
	Features []float64

	payload any
}

// SimResult is what simulating a selected candidate cost and found.
type SimResult struct {
	Cycles int64 // simulation cycles spent on this candidate
	Gain   int   // coverage bins first hit (ISA) / latent defects caught (mfgtest)
}

// Source produces the candidate stream and simulates selected
// candidates. Implementations must be pure functions of their seed:
// the same seed yields the same candidate and simulation sequence.
// Next and Simulate are called serially by the loop.
type Source interface {
	Name() string
	Dim() int
	Next() Candidate
	// Simulate runs the expensive step on a candidate this source
	// produced. Only the most recently drawn candidate is simulated.
	Simulate(c Candidate) SimResult
}

// NewSource builds a named source: "isa" (constrained-random ISA
// programs, the paper's novel-test-selection scenario), "mfgtest"
// (parametric chip measurements, the customer-returns scenario), or
// "isa-stress" / "isa-stress:<profile>" (ChiBench-style stress programs
// from one instruction-mix profile, default hazard-dense).
// shiftAt > 0 plants a distribution shift at that stream position so
// drift-triggered refreshes can be exercised deterministically.
func NewSource(name string, seed int64, shiftAt int) (Source, error) {
	switch name {
	case "isa":
		return NewISASource(seed, shiftAt), nil
	case "mfgtest":
		return NewMfgSource(seed, shiftAt), nil
	}
	if name == "isa-stress" || strings.HasPrefix(name, "isa-stress:") {
		profile := strings.TrimPrefix(strings.TrimPrefix(name, "isa-stress"), ":")
		return NewISAStressSource(profile, seed, shiftAt)
	}
	return nil, fmt.Errorf("stream: unknown source %q (want isa, mfgtest, isa-stress, or isa-stress:<profile>)", name)
}

// ISASource streams constrained-random ISA programs: the generator half
// of the paper's Figure 7 loop. It starts from the narrow
// DefaultTemplate; at stream position ShiftAt (if positive) it switches
// to the wide "try everything" template — a planted concept shift that
// drives the decision scores of a model trained on the narrow regime
// sharply negative, which is exactly what the drift detector exists to
// catch.
type ISASource struct {
	gen     *isa.Generator
	machine *isa.Machine
	cov     *isa.Coverage // cumulative coverage across simulated tests
	shiftAt int
	seq     int
}

// NewISASource seeds the program stream.
func NewISASource(seed int64, shiftAt int) *ISASource {
	return &ISASource{
		gen:     isa.NewGenerator(isa.DefaultTemplate(), seed),
		machine: isa.NewMachine(),
		cov:     &isa.Coverage{},
		shiftAt: shiftAt,
	}
}

// Name implements Source.
func (s *ISASource) Name() string { return "isa" }

// Dim implements Source.
func (s *ISASource) Dim() int { return len(isa.FeatureNames) }

// Next implements Source.
func (s *ISASource) Next() Candidate {
	if s.shiftAt > 0 && s.seq == s.shiftAt {
		// The planted shift: same rng stream, wider template — every
		// draw after this point comes from a different distribution.
		s.gen.T = isa.WideTemplate()
	}
	p := s.gen.Next()
	c := Candidate{Seq: s.seq, Features: isa.Features(p), payload: p}
	s.seq++
	return c
}

// Simulate implements Source: run the program on the reference machine
// and merge its coverage into the cumulative map. Gain is the number of
// coverage bins this test hit first — the numerator of the paper's
// Table-1 economics.
func (s *ISASource) Simulate(c Candidate) SimResult {
	p := c.payload.(isa.Program)
	cov := s.machine.Run(p)
	before := s.cov.Count()
	s.cov.Merge(cov)
	return SimResult{
		Cycles: s.machine.Cycles,
		Gain:   s.cov.Count() - before,
	}
}

// CoverageCount returns the cumulative coverage-bin count across every
// simulated candidate.
func (s *ISASource) CoverageCount() int { return s.cov.Count() }

// ISAStressSource streams stress programs from one instruction-mix
// profile (see isa.StressProfiles). At ShiftAt the stream switches to
// the store-heavy profile — a planted shift that concentrates pressure
// on a different corner of the load-store unit, so features (and the
// decision scores of a model trained on the original profile) move
// sharply.
type ISAStressSource struct {
	gen     *isa.StressGen
	seed    int64
	machine *isa.Machine
	cov     *isa.Coverage
	shiftAt int
	seq     int
}

// NewISAStressSource seeds the stress stream; an empty profile selects
// the generator default (hazard-dense).
func NewISAStressSource(profile string, seed int64, shiftAt int) (*ISAStressSource, error) {
	gen, err := isa.NewStressGen(isa.StressConfig{Profile: profile}, seed)
	if err != nil {
		return nil, err
	}
	return &ISAStressSource{
		gen:     gen,
		seed:    seed,
		machine: isa.NewMachine(),
		cov:     &isa.Coverage{},
		shiftAt: shiftAt,
	}, nil
}

// Name implements Source.
func (s *ISAStressSource) Name() string { return "isa-stress:" + s.gen.Profile().Name }

// Dim implements Source.
func (s *ISAStressSource) Dim() int { return len(isa.FeatureNames) }

// Next implements Source.
func (s *ISAStressSource) Next() Candidate {
	if s.shiftAt > 0 && s.seq == s.shiftAt && s.gen.Profile().Name != "store-heavy" {
		// The planted shift: reseed deterministically onto the
		// store-heavy profile (derived from the source seed so the whole
		// stream stays a pure function of it).
		g, err := isa.NewStressGen(isa.StressConfig{Profile: "store-heavy"}, s.seed+1)
		if err != nil { // unreachable: the profile name is a constant
			panic(err)
		}
		s.gen = g
	}
	p := s.gen.Next()
	c := Candidate{Seq: s.seq, Features: isa.Features(p), payload: p}
	s.seq++
	return c
}

// Simulate implements Source: identical economics to ISASource.
func (s *ISAStressSource) Simulate(c Candidate) SimResult {
	p := c.payload.(isa.Program)
	cov := s.machine.Run(p)
	before := s.cov.Count()
	s.cov.Merge(cov)
	return SimResult{
		Cycles: s.machine.Cycles,
		Gain:   s.cov.Count() - before,
	}
}

// CoverageCount returns the cumulative coverage-bin count.
func (s *ISAStressSource) CoverageCount() int { return s.cov.Count() }

// mfgCyclesPerTest is the nominal tester cost of fully characterizing
// one parametric test — the unit the mfgtest economics are counted in.
const mfgCyclesPerTest = 50

// MfgSource streams parametric chip measurements from the Figure 11
// returns scenario: each candidate is one shipped-quality chip, and
// "simulation" is the full characterization re-test that catches latent
// defects before they become customer returns. At ShiftAt the stream
// switches to the sister product line (shifted means and noise) — the
// planted shift for drift testing.
type MfgSource struct {
	sc      *mfgtest.ReturnsScenario
	rng     *rand.Rand
	shiftAt int
	seq     int
	nextID  int
	buf     []mfgtest.Chip
}

// NewMfgSource seeds the chip stream.
func NewMfgSource(seed int64, shiftAt int) *MfgSource {
	return &MfgSource{
		sc:      mfgtest.NewReturnsScenario(16),
		rng:     rand.New(rand.NewSource(seed)),
		shiftAt: shiftAt,
	}
}

// Name implements Source.
func (s *MfgSource) Name() string { return "mfgtest" }

// Dim implements Source.
func (s *MfgSource) Dim() int { return s.sc.Model.NumTests() }

// Next implements Source.
func (s *MfgSource) Next() Candidate {
	if s.shiftAt > 0 && s.seq == s.shiftAt {
		s.sc = s.sc.SisterScenario()
		s.buf = nil // remaining chips belong to the old line
	}
	if len(s.buf) == 0 {
		const lot = 32
		s.buf = s.sc.Model.Sample(s.rng, lot, s.nextID, s.sc.Defect)
		s.nextID += lot
	}
	chip := s.buf[0]
	s.buf = s.buf[1:]
	c := Candidate{Seq: s.seq, Features: chip.Meas, payload: chip}
	s.seq++
	return c
}

// Simulate implements Source: the full characterization re-test. Gain
// counts latent defects caught at the tester instead of in the field.
func (s *MfgSource) Simulate(c Candidate) SimResult {
	chip := c.payload.(mfgtest.Chip)
	gain := 0
	if chip.LatentDefect {
		gain = 1
	}
	return SimResult{
		Cycles: int64(len(chip.Meas)) * mfgCyclesPerTest,
		Gain:   gain,
	}
}
