package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/svm"
)

// testConfig is the shared fast-but-nontrivial loop shape: enough
// candidates to warm up, select past the window, and cross the planted
// shift so drift-triggered refreshes actually happen.
func testConfig(t *testing.T, seed int64) Config {
	t.Helper()
	src, err := NewSource("isa", seed, 200)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Seed:       seed,
		Source:     src,
		Candidates: 400,
		Warmup:     24,
		Window:     64,
		MinRefit:   8,
		RefreshMax: 64,
	}
}

func stripModel(r *Result) *Result {
	c := *r
	c.FinalModel = nil
	return &c
}

// Same seed, same trajectory — selected sequence, swap points, and every
// counter — at 1, 2, and 8 workers. This is the determinism half of the
// ISSUE acceptance criteria: all parallelism lives inside the kernel and
// solver math, which is bit-identical at any worker count.
func TestLoopDeterminism(t *testing.T) {
	var base *Result
	for _, workers := range []int{1, 2, 8} {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		res, err := Run(context.Background(), testConfig(t, 42))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Selected == 0 || res.Swaps() == 0 {
			t.Fatalf("workers=%d: degenerate run: %+v", workers, res)
		}
		if base == nil {
			base = res
			t.Logf("trajectory: examined=%d selected=%d swaps=%d drift=%d",
				res.Examined, res.Selected, res.Swaps(), res.DriftEvents)
			continue
		}
		if !reflect.DeepEqual(stripModel(base), stripModel(res)) {
			t.Errorf("workers=%d: trajectory diverged\nbase: %+v\n got: %+v",
				workers, stripModel(base), stripModel(res))
		}
	}
}

// Distinct seeds must explore distinct trajectories — otherwise the
// determinism test above proves nothing.
func TestLoopSeedSensitivity(t *testing.T) {
	a, err := Run(context.Background(), testConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.SelectedSeq, b.SelectedSeq) {
		t.Fatal("different seeds produced identical selected sequences")
	}
}

// The planted template shift at candidate 200 must register as a drift
// event and force a drift-reason refresh.
func TestLoopDriftTriggersRefresh(t *testing.T) {
	res, err := Run(context.Background(), testConfig(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftEvents == 0 {
		t.Fatalf("planted shift produced no drift events: %s", res.Summary())
	}
	drift := 0
	for _, rf := range res.Refreshes {
		if rf.Reason == "drift" {
			drift++
		}
	}
	if drift == 0 {
		t.Fatalf("no drift-reason refresh despite %d drift events: %s",
			res.DriftEvents, res.Summary())
	}
	// The filter must actually filter once a model is serving.
	if res.Rejected == 0 {
		t.Fatalf("novelty filter rejected nothing: %s", res.Summary())
	}
}

// The mfgtest source must run end to end and find planted latent
// defects.
func TestLoopMfgSource(t *testing.T) {
	src, err := NewSource("mfgtest", 7, 250)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Seed: 7, Source: src, Candidates: 400, Warmup: 24, Window: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected == 0 || res.Swaps() == 0 || res.SimCycles == 0 {
		t.Fatalf("degenerate mfg run: %s", res.Summary())
	}
}

func TestNewSourceUnknown(t *testing.T) {
	if _, err := NewSource("nope", 1, 0); err == nil {
		t.Fatal("expected an error for an unknown source name")
	}
}

// The cumulative coverage accessor must agree with the gains the
// simulator reported, and the trainer must expose the kernel the
// window is built with (the artifact writer persists it).
func TestISASourceCoverageCount(t *testing.T) {
	src, err := NewSource("isa", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	isa := src.(*ISASource)
	if isa.CoverageCount() != 0 {
		t.Fatalf("fresh source reports coverage %d", isa.CoverageCount())
	}
	total := 0
	for i := 0; i < 20; i++ {
		total += src.Simulate(src.Next()).Gain
	}
	if got := isa.CoverageCount(); got != total || got == 0 {
		t.Fatalf("CoverageCount %d, want sum of gains %d (nonzero)", got, total)
	}
}

func TestTrainerKernelAccessor(t *testing.T) {
	k := kernel.RBF{Gamma: 0.25}
	tr, err := NewTrainer(TrainerConfig{Dim: 4, Window: 16, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kernel() != k {
		t.Fatalf("Kernel() = %#v, want the configured kernel", tr.Kernel())
	}
}

// Chaos: with faults injected at both stream sites, the loop must
// (a) survive — drops and aborted refreshes are counted, never fatal —
// and (b) replay bit-identically under the same plan seed.
func TestLoopChaosDeterministicReplay(t *testing.T) {
	plan := fault.Uniform(99, fault.SiteConfig{ErrRate: 0.25}, fault.StreamSites()...)
	defer fault.Deactivate()

	run := func() *Result {
		fault.Activate(plan) // fresh per-site streams: exact replay
		res, err := Run(context.Background(), testConfig(t, 42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Dropped == 0 {
		t.Fatalf("ingest faults at 25%% dropped nothing: %s", a.Summary())
	}
	if a.RetrainErr == 0 {
		t.Fatalf("retrain faults at 25%% aborted nothing: %s", a.Summary())
	}
	if !reflect.DeepEqual(stripModel(a), stripModel(b)) {
		t.Errorf("chaos replay diverged\n a: %+v\n b: %+v", stripModel(a), stripModel(b))
	}
	// An aborted refresh must keep the previous model serving: the loop
	// still completes swaps after its first retrain fault.
	if a.Swaps() == 0 {
		t.Fatalf("no swaps completed under chaos: %s", a.Summary())
	}
}

// Cancellation is a graceful drain: partial trajectory, Drained set, no
// error.
func TestLoopDrain(t *testing.T) {
	cfg := testConfig(t, 42)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := l.Run(ctx)
	if err != nil {
		t.Fatalf("drain returned an error: %v", err)
	}
	if !res.Drained {
		t.Fatal("canceled run did not report Drained")
	}
	if res.Examined != 0 {
		t.Fatalf("pre-canceled run examined %d candidates", res.Examined)
	}
}

// Snapshot must be safe and consistent while the loop is running (the
// /loop/status endpoint reads it live). Run under -race this is the
// concurrency proof.
func TestLoopSnapshotConcurrent(t *testing.T) {
	cfg := testConfig(t, 42)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			s := l.Snapshot()
			if s.Selected > 0 && len(s.SelectedSeq) > s.Selected {
				t.Errorf("snapshot inconsistent: %d selected, %d seq entries",
					s.Selected, len(s.SelectedSeq))
				return
			}
		}
	}()
	res, err := l.Run(context.Background())
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	final := l.Snapshot()
	if !reflect.DeepEqual(stripModel(res), stripModel(&final)) {
		t.Error("final snapshot does not match the returned result")
	}
}

// slowSource throttles a Source so the loop runs long enough for
// concurrent clients to overlap its swaps.
type slowSource struct {
	Source
	pause time.Duration
}

func (s *slowSource) Next() Candidate {
	time.Sleep(s.pause)
	return s.Source.Next()
}

// Hot-swap under live traffic: a loop publishing into a serving registry
// while clients hammer /predict must never drop a request — every
// response after the first load is 200, across every swap. This is the
// zero-dropped-requests acceptance criterion, in-process.
func TestLoopHotSwapZeroDroppedRequests(t *testing.T) {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := testConfig(t, 42)
	cfg.Source = &slowSource{Source: cfg.Source, pause: time.Millisecond}
	cfg.Registry = srv
	cfg.ModelName = "stream-oneclass"
	var published atomic.Int64
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	loopDone := make(chan *Result, 1)
	go func() {
		res, err := l.Run(context.Background())
		if err != nil {
			t.Errorf("loop: %v", err)
		}
		loopDone <- res
	}()

	// Wait for the first swap so the model exists, then hammer it.
	deadline := time.Now().Add(30 * time.Second)
	for len(srv.Models()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no model published within 30s")
		}
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(map[string][][]float64{
		"instances": {make([]float64, cfg.Source.Dim())},
	})
	var failures atomic.Int64
	var requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/predict/"+cfg.ModelName,
					"application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					t.Errorf("predict: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("predict: status %d", resp.StatusCode)
				}
				resp.Body.Close()
				requests.Add(1)
				snap := l.Snapshot()
				published.Store(int64(snap.Swaps()))
			}
		}()
	}

	res := <-loopDone
	close(stop)
	wg.Wait()
	if res == nil {
		t.Fatal("loop returned no result")
	}
	if res.Swaps() < 2 {
		t.Fatalf("need >=2 swaps for the hammer to span one: got %d", res.Swaps())
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests dropped across %d swaps",
			failures.Load(), requests.Load(), res.Swaps())
	}
	if requests.Load() == 0 {
		t.Fatal("hammer sent no requests")
	}
	t.Logf("%d requests, 0 dropped, across %d swaps", requests.Load(), res.Swaps())
}

// Warm-start correctness guard: the incremental trainer's model (a chain
// of warm-started refreshes with eviction) must define the same decision
// function as a cold fit on the same final window, within solver
// tolerance. This is the satellite-2 contract; the conformance suite
// pins it too.
func TestWarmStartMatchesColdDecision(t *testing.T) {
	const (
		n, dim, window = 160, 6, 64
		tol            = 1e-3
	)
	rng := rand.New(rand.NewSource(11))
	x := linalg.NewMatrix(n, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	k := kernel.RBF{Gamma: 1.0 / dim}
	cfg := svm.OneClassConfig{Nu: 0.1}

	warm, stats, err := FitWindow(x, k, window, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmStarts == 0 {
		t.Fatalf("replay used no warm starts: %+v", stats)
	}

	// Cold fit on exactly the final window: the last `window` rows.
	win := linalg.NewMatrix(window, dim)
	copy(win.Data, x.Data[(n-window)*dim:])
	cold, err := svm.FitOneClass(win, k, cfg)
	if err != nil {
		t.Fatal(err)
	}

	probes := linalg.NewMatrix(64, dim)
	for i := range probes.Data {
		probes.Data[i] = rng.NormFloat64() * 1.5
	}
	worst := 0.0
	for i := 0; i < probes.Rows; i++ {
		p := probes.Row(i)
		d := warm.Decision(p) - cold.Decision(p)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Fatalf("warm-chain and cold decision functions diverge: max |Δ| = %g > %g", worst, tol)
	}
	t.Logf("max decision divergence %g over %d probes (%d refreshes, %d warm, %d fallbacks)",
		worst, probes.Rows, stats.Refreshes, stats.WarmStarts, stats.Fallbacks)
}

// WarmStartAlpha is a projection onto the dual-feasible simplex slice:
// box constraints respected, mass exactly one, and degenerate inputs
// refused (nil → cold start).
func TestWarmStartAlphaProjection(t *testing.T) {
	const nu = 0.1
	check := func(name string, prev []float64, n int) []float64 {
		t.Helper()
		a := svm.WarmStartAlpha(prev, n, nu)
		if a == nil {
			return nil
		}
		upper := 1.0 / (nu * float64(n))
		sum := 0.0
		for i, v := range a {
			if v < 0 || v > upper+1e-12 {
				t.Fatalf("%s: alpha[%d]=%g outside [0, %g]", name, i, v, upper)
			}
			sum += v
		}
		if d := sum - 1; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: sum(alpha)=%g, want 1", name, sum)
		}
		return a
	}

	if svm.WarmStartAlpha(nil, 50, nu) != nil {
		t.Fatal("nil prev must mean cold start")
	}
	if svm.WarmStartAlpha(make([]float64, 50), 50, nu) != nil {
		t.Fatal("all-zero prev must mean cold start")
	}

	// Window grew: mass redistributed into the headroom.
	prev := make([]float64, 40)
	for i := range prev {
		prev[i] = 1.0 / 40
	}
	check("grown", prev, 50)

	// Shrunk window with clipped weights: everything must be re-boxed.
	prev = make([]float64, 30)
	for i := range prev {
		prev[i] = 0.5 // far above 1/(nu*30)
	}
	check("clipped", prev, 30)

	// Determinism: same input, same projection.
	a := check("repeat", prev, 30)
	b := check("repeat", prev, 30)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("projection is not deterministic")
	}
}

// FitWindow input validation.
func TestFitWindowEmpty(t *testing.T) {
	if _, _, err := FitWindow(linalg.NewMatrix(0, 4), nil, 16, 8, svm.OneClassConfig{}); err == nil {
		t.Fatal("expected an error on an empty training set")
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected an error when Source is missing")
	}
	if _, err := NewTrainer(TrainerConfig{}); err == nil {
		t.Fatal("expected an error when Dim is missing")
	}
}

// Summary must render without panicking even on a zero result.
func TestResultSummary(t *testing.T) {
	var r Result
	if s := r.Summary(); s == "" {
		t.Fatal("empty summary")
	}
	res, err := Run(context.Background(), testConfig(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if s == "" {
		t.Fatal("empty summary for a real run")
	}
	for _, want := range []string{"examined", "swaps", "drift"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	_ = fmt.Sprintf("%v", res) // the struct must be printable too
}
