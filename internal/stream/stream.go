// Package stream is the paper's knowledge-discovery loop (Sections 1
// and 5) run *online*: generate candidates, score their novelty against
// the current one-class model, simulate only the selected few, fold
// them into a sliding training window, and retrain incrementally —
// warm-starting the SMO solve from the previous dual weights over a
// Gram matrix maintained by rank-1 row appends (kernel.SlidingGram) —
// hot-swapping each refreshed model atomically through the serving
// registry. A drift detector on the decision-value stream decides when
// to refresh, instead of a fixed cadence.
//
// Determinism contract: the whole loop is a pure function of one int64
// seed. Candidates are drawn, scored, and selected strictly in stream
// order; all parallelism lives inside the kernel/solver math, which is
// bit-identical at any worker count (internal/parallel). Same seed —
// same selected-test sequence, same swap points, same counters, at 1,
// 2, or 8 workers (asserted by TestLoopDeterminism).
//
// Chaos: fault.SiteStreamIngest drops candidates at intake and
// fault.SiteStreamRetrain aborts refreshes (the previous model keeps
// serving), both deterministically per plan seed, so a chaos replay of
// the loop is reproducible end to end.
package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/svm"
)

// Loop metrics. Everything is incremented serially by the loop
// goroutine, so two runs at one seed produce identical snapshots.
var (
	candidatesSeen     = obs.GetCounter("stream.candidates_seen")
	selectedCount      = obs.GetCounter("stream.selected")
	rejectedCount      = obs.GetCounter("stream.rejected")
	ingestDropped      = obs.GetCounter("stream.ingest_dropped")
	retrainFailures    = obs.GetCounter("stream.retrain_failures")
	swapCount          = obs.GetCounter("stream.swaps")
	driftEventCount    = obs.GetCounter("stream.drift_events")
	warmstartFallbacks = obs.GetCounter("stream.warmstart_fallbacks")
	simCycles          = obs.GetCounter("stream.sim_cycles")
	coverageGain       = obs.GetCounter("stream.coverage_gain")
	refreshLatency     = obs.GetHistogram("stream.refresh_ns")
	driftScoreGauge    = obs.GetGauge("stream.drift_score_e6")
	windowSizeGauge    = obs.GetGauge("stream.window_size")
)

// Config wires one streaming run.
type Config struct {
	// Seed is the single seed the whole trajectory derives from. It is
	// recorded in every published artifact's envelope.
	Seed int64
	// Source produces candidates and simulates the selected ones.
	// Required; build one with NewSource.
	Source Source
	// Candidates is how many candidates to examine, default 512.
	Candidates int
	// Warmup: until the window holds this many selected samples, every
	// candidate is selected (there is no model to filter with yet).
	// Default 32, clamped to Window.
	Warmup int
	// Window is the sliding training-window capacity, default 256.
	Window int
	// Nu is the one-class outlier fraction, default 0.1.
	Nu float64
	// Kernel defaults to RBF with gamma = 1/dim. Must be persistable
	// (model.SpecOf) when Registry or Publish is set.
	Kernel kernel.Kernel
	// MinRefit is the minimum number of newly selected samples since
	// the last refresh before a drift signal may trigger one, default 8.
	MinRefit int
	// RefreshMax forces a refresh after this many selected samples
	// without one — the safety cadence under a quiet detector. Default
	// 64; negative disables it.
	RefreshMax int
	// Drift decides when to refresh; default two-sided Page–Hinkley
	// with standard thresholds.
	Drift Detector
	// ModelName is the registry name refreshed models are published
	// under, default "stream-oneclass".
	ModelName string
	// Registry, when set, receives every refreshed model via an atomic
	// Load — the zero-dropped-requests hot-swap path.
	Registry *serve.Server
	// Publish, when set, receives every refreshed model's artifact
	// (cmd/edaloop uses it to write artifact files and push them to a
	// remote edaserved).
	Publish func(*model.Artifact) error
}

func (cfg *Config) normalize() error {
	if cfg.Source == nil {
		return errors.New("stream: Config.Source is required")
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 512
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 32
	}
	if cfg.Warmup > cfg.Window {
		cfg.Warmup = cfg.Window
	}
	if cfg.MinRefit <= 0 {
		cfg.MinRefit = 8
	}
	if cfg.RefreshMax == 0 {
		cfg.RefreshMax = 64
	}
	if cfg.Drift == nil {
		cfg.Drift = NewPageHinkley(0, 0, 0)
	}
	if cfg.ModelName == "" {
		cfg.ModelName = "stream-oneclass"
	}
	if cfg.Kernel == nil {
		cfg.Kernel = kernel.RBF{Gamma: 1.0 / float64(cfg.Source.Dim())}
	}
	return nil
}

// Refresh records one model swap: where in the stream it happened and
// how the solve went.
type Refresh struct {
	Candidate int    `json:"candidate"` // stream position that triggered it
	Window    int    `json:"window"`    // window size trained on
	Reason    string `json:"reason"`    // "warmup" | "drift" | "cadence"
	Warm      bool   `json:"warm"`      // warm start used and kept
	Fallback  bool   `json:"fallback"`  // warm start failed; cold refit served
	Iters     int    `json:"iters"`     // solver iterations of the kept solve
}

// Result is the loop's trajectory — the reproducible record a seed
// maps to. SelectedSeq and Refreshes are the "same selected-test
// sequence, same swap points" half of the determinism contract;
// the counters mirror the obs deltas.
type Result struct {
	Seed        int64     `json:"seed"`
	Source      string    `json:"source"`
	Examined    int       `json:"examined"`
	Selected    int       `json:"selected"`
	Rejected    int       `json:"rejected"`
	Dropped     int       `json:"dropped"`        // candidates lost to injected ingest faults
	RetrainErr  int       `json:"retrain_errors"` // refreshes lost to injected retrain faults
	Fallbacks   int       `json:"warmstart_fallbacks"`
	DriftEvents int       `json:"drift_events"`
	SimCycles   int64     `json:"sim_cycles"`
	Gain        int       `json:"gain"` // coverage bins / latent defects found
	SelectedSeq []int     `json:"selected_seq"`
	Refreshes   []Refresh `json:"refreshes"`
	Drained     bool      `json:"drained"` // loop stopped early on context cancellation

	// FinalModel is the last model swapped in (nil if the loop never
	// completed a refresh).
	FinalModel *svm.OneClass `json:"-"`
}

// Swaps returns the number of completed refreshes.
func (r *Result) Swaps() int { return len(r.Refreshes) }

// Summary renders the Table-1-style iterative economics: how much of
// the stream was simulated, what it cost, and what it found.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream[%s] seed=%d: examined %d, selected %d (%.1f%%), rejected %d, dropped %d\n",
		r.Source, r.Seed, r.Examined, r.Selected,
		100*float64(r.Selected)/float64(max(r.Examined, 1)), r.Rejected, r.Dropped)
	saved := int64(0)
	if r.Selected > 0 {
		perSim := r.SimCycles / int64(r.Selected)
		saved = perSim * int64(r.Rejected)
	}
	fmt.Fprintf(&b, "  sim cycles spent %d, est. cycles saved by filtering %d, gain %d\n",
		r.SimCycles, saved, r.Gain)
	fmt.Fprintf(&b, "  swaps %d, drift events %d, warm-start fallbacks %d, retrain errors %d\n",
		r.Swaps(), r.DriftEvents, r.Fallbacks, r.RetrainErr)
	for _, rf := range r.Refreshes {
		mode := "cold"
		if rf.Warm {
			mode = "warm"
		}
		if rf.Fallback {
			mode = "fallback"
		}
		fmt.Fprintf(&b, "  swap @%-6d window=%-4d reason=%-7s %s (%d iters)\n",
			rf.Candidate, rf.Window, rf.Reason, mode, rf.Iters)
	}
	return b.String()
}

// Loop is one streaming run in progress. Construct with New, drive with
// Run; Snapshot is safe to call concurrently with Run (cmd/edaloop's
// /loop/status endpoint does).
type Loop struct {
	cfg     Config
	trainer *Trainer

	mu     chan struct{} // 1-token semaphore guarding res for Snapshot
	res    Result
	active *svm.OneClass
}

// New validates the config and prepares a loop.
func New(cfg Config) (*Loop, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	tr, err := NewTrainer(TrainerConfig{
		Window: cfg.Window, Dim: cfg.Source.Dim(), Nu: cfg.Nu, Kernel: cfg.Kernel,
	})
	if err != nil {
		return nil, err
	}
	l := &Loop{
		cfg:     cfg,
		trainer: tr,
		mu:      make(chan struct{}, 1),
	}
	l.res = Result{Seed: cfg.Seed, Source: cfg.Source.Name()}
	return l, nil
}

func (l *Loop) lock() func() {
	l.mu <- struct{}{}
	return func() { <-l.mu }
}

// Snapshot returns a copy of the trajectory so far.
func (l *Loop) Snapshot() Result {
	defer l.lock()()
	r := l.res
	r.SelectedSeq = append([]int(nil), l.res.SelectedSeq...)
	r.Refreshes = append([]Refresh(nil), l.res.Refreshes...)
	return r
}

// Run drives the loop to completion (or context cancellation, which is
// a graceful drain: the partial trajectory is returned with Drained
// set, not an error). Run must be called once.
func (l *Loop) Run(ctx context.Context) (*Result, error) {
	cfg := &l.cfg
	selectedSince := 0 // selected samples since the last completed refresh
	driftPending := false

	for seq := 0; seq < cfg.Candidates; seq++ {
		if ctx.Err() != nil {
			l.setDrained()
			break
		}
		c := cfg.Source.Next()
		candidatesSeen.Inc()
		l.bump(func(r *Result) { r.Examined++ })

		// Intake chaos: an injected error drops the candidate before it
		// is scored or simulated; an injected delay stalls the intake.
		if o := fault.Check(fault.SiteStreamIngest); o.Err != nil || o.Delay > 0 {
			if err := o.Wait(ctx); err != nil {
				l.setDrained()
				break
			}
			if o.Err != nil {
				ingestDropped.Inc()
				l.bump(func(r *Result) { r.Dropped++ })
				continue
			}
		}

		novel := true
		if l.active != nil {
			score := l.active.Decision(c.Features)
			if cfg.Drift.Observe(score) && !driftPending {
				driftPending = true
				driftEventCount.Inc()
				l.bump(func(r *Result) { r.DriftEvents++ })
			}
			driftScoreGauge.Set(int64(cfg.Drift.Score() * 1e6))
			novel = score < 0
		}

		if novel {
			sim := cfg.Source.Simulate(c)
			simCycles.Add(sim.Cycles)
			coverageGain.Add(int64(sim.Gain))
			l.trainer.Add(c.Features)
			windowSizeGauge.Set(int64(l.trainer.Len()))
			selectedCount.Inc()
			selectedSince++
			l.bump(func(r *Result) {
				r.Selected++
				r.SimCycles += sim.Cycles
				r.Gain += sim.Gain
				r.SelectedSeq = append(r.SelectedSeq, c.Seq)
			})
		} else {
			rejectedCount.Inc()
			l.bump(func(r *Result) { r.Rejected++ })
		}

		// Refresh policy, evaluated strictly after the candidate is
		// handled so the trajectory stays serial and replayable.
		reason := ""
		switch {
		case l.active == nil && l.trainer.Len() >= cfg.Warmup:
			reason = "warmup"
		case l.active != nil && driftPending && selectedSince >= cfg.MinRefit:
			reason = "drift"
		case l.active != nil && cfg.RefreshMax > 0 && selectedSince >= cfg.RefreshMax:
			reason = "cadence"
		}
		if reason == "" {
			continue
		}
		ok, err := l.refresh(ctx, c.Seq, reason)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				l.setDrained()
				break
			}
			return l.result(), err
		}
		if ok {
			selectedSince = 0
			driftPending = false
			cfg.Drift.Reset()
		}
	}
	return l.result(), nil
}

// refresh retrains on the current window and swaps the new model in.
// Returns false (with nil error) when the refresh was aborted by an
// injected retrain fault — the previous model keeps serving.
func (l *Loop) refresh(ctx context.Context, at int, reason string) (bool, error) {
	if o := fault.Check(fault.SiteStreamRetrain); o.Err != nil || o.Delay > 0 {
		if err := o.Wait(ctx); err != nil {
			return false, err
		}
		if o.Err != nil {
			retrainFailures.Inc()
			l.bump(func(r *Result) { r.RetrainErr++ })
			return false, nil
		}
	}
	t := refreshLatency.Start()
	m, info, fellBack, err := l.trainer.Refresh()
	t.Stop()
	if err != nil {
		return false, err
	}
	if err := l.publish(m); err != nil {
		return false, err
	}
	l.active = m
	swapCount.Inc()
	if fellBack {
		l.bump(func(r *Result) { r.Fallbacks++ })
	}
	l.bump(func(r *Result) {
		r.FinalModel = m
		r.Refreshes = append(r.Refreshes, Refresh{
			Candidate: at, Window: l.trainer.Len(), Reason: reason,
			Warm: info.WarmStart, Fallback: fellBack, Iters: info.Iters,
		})
	})
	return true, nil
}

// publish pushes the refreshed model through the serving registry
// (atomic swap; in-flight requests finish on the old model) and the
// external publish hook.
func (l *Loop) publish(m *svm.OneClass) error {
	cfg := &l.cfg
	if cfg.Registry == nil && cfg.Publish == nil {
		return nil
	}
	a, err := model.Encode(m, model.Meta{Name: cfg.ModelName, Seed: cfg.Seed})
	if err != nil {
		return fmt.Errorf("stream: encode refreshed model: %w", err)
	}
	if cfg.Registry != nil {
		if err := cfg.Registry.Load(cfg.ModelName, a); err != nil {
			return fmt.Errorf("stream: hot-swap %q: %w", cfg.ModelName, err)
		}
	}
	if cfg.Publish != nil {
		if err := cfg.Publish(a); err != nil {
			return fmt.Errorf("stream: publish %q: %w", cfg.ModelName, err)
		}
	}
	return nil
}

func (l *Loop) bump(f func(*Result)) {
	defer l.lock()()
	f(&l.res)
}

func (l *Loop) setDrained() {
	l.bump(func(r *Result) { r.Drained = true })
}

func (l *Loop) result() *Result {
	defer l.lock()()
	r := l.res
	return &r
}

// Run is the one-call convenience: build the loop and drive it.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	l, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return l.Run(ctx)
}
