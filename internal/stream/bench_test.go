package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/svm"
)

// BenchmarkIncrementalRefresh is the tentpole's economics claim, pinned:
// one streaming refresh — delta new samples folded into the window
// (rank-1 Gram rows via kernel.SlidingGram) plus a warm-started solve —
// against the cold alternative the batch path would pay: a full O(n²·d)
// Gram rebuild and a cold solve on the same window. scripts/
// bench_ratchet.sh compares the two modes within each run and warns if
// incremental ever stops beating cold.
func BenchmarkIncrementalRefresh(b *testing.B) {
	const (
		dim   = 12
		delta = 32 // new samples folded in per refresh
	)
	for _, window := range []int{1024} {
		cfg := svm.OneClassConfig{Nu: 0.1, MaxIters: 4 * window}
		k := kernel.RBF{Gamma: 1.0 / dim}

		// One fixed sample pool, consumed cyclically: both modes see the
		// identical arrival stream.
		rng := rand.New(rand.NewSource(5))
		pool := linalg.NewMatrix(window+delta*64, dim)
		for i := range pool.Data {
			pool.Data[i] = rng.NormFloat64()
		}
		next := 0
		nextRow := func() []float64 {
			r := pool.Row(next % pool.Rows)
			next++
			return r
		}

		b.Run(fmt.Sprintf("window=%d/mode=incremental", window), func(b *testing.B) {
			next = 0
			tr, err := NewTrainer(TrainerConfig{
				Window: window, Dim: dim, Nu: cfg.Nu, MaxIters: cfg.MaxIters, Kernel: k,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < window; i++ {
				tr.Add(nextRow())
			}
			if _, _, _, err := tr.Refresh(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < delta; j++ {
					tr.Add(nextRow())
				}
				if _, _, _, err := tr.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("window=%d/mode=cold", window), func(b *testing.B) {
			next = 0
			// The cold path keeps the same sliding window of rows but
			// pays the full price per refresh: rebuild the Gram matrix,
			// solve from the canonical cold start.
			buf := linalg.NewMatrix(window, dim)
			for i := 0; i < window; i++ {
				copy(buf.Row(i), nextRow())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < delta; j++ {
					// Slide: drop the oldest row, append the newest.
					copy(buf.Data, buf.Data[dim:])
					copy(buf.Row(window-1), nextRow())
				}
				if _, err := svm.FitOneClass(buf, k, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
