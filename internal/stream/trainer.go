package stream

import (
	"errors"

	"repro/internal/core/colmat"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/svm"
)

// Trainer is the incremental retraining half of the loop: a sliding
// window whose Gram matrix is maintained by kernel.SlidingGram (one
// kernel row per append, O(1) eviction) and a warm-started ν-one-class
// solve that resumes from the previous window's dual weights. A refresh
// therefore costs one solve from a near-optimal start instead of an
// O(n²·d) Gram rebuild plus a cold solve — the incremental-vs-cold gap
// BenchmarkIncrementalRefresh measures and scripts/bench_ratchet.sh
// guards.
//
// Warm-start correctness guard: a warm solve that exits without
// meeting the KKT-gap tolerance is not trusted — the trainer falls
// back to a cold solve on the same window and counts the event under
// stream.warmstart_fallbacks. The conformance suite additionally
// asserts that a converged warm solve agrees with the cold solution's
// decision function within solver tolerance.
type Trainer struct {
	cfg   TrainerConfig
	sg    *kernel.SlidingGram
	prev  []float64 // dual weights aligned to the live window; nil before the first fit
	fits  int
	warm  int
	falls int
}

// TrainerConfig sizes the incremental trainer.
type TrainerConfig struct {
	Window   int           // sliding window capacity, default 256
	Dim      int           // feature dimension, required
	Nu       float64       // expected outlier fraction, default 0.1
	Tol      float64       // solver KKT tolerance, default 1e-4
	MaxIters int           // solver sweep cap, default 200
	Kernel   kernel.Kernel // default RBF with gamma = 1/Dim
}

func (cfg *TrainerConfig) normalize() error {
	if cfg.Dim <= 0 {
		return errors.New("stream: TrainerConfig.Dim must be positive")
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.MaxIters <= 0 {
		// The batch default (200 pair updates) is tuned for small fits;
		// a full window needs room to reach its KKT certificate. The
		// solver stops at the tolerance anyway, so the cap is slack, not
		// cost.
		cfg.MaxIters = 4 * cfg.Window
	}
	if cfg.Kernel == nil {
		cfg.Kernel = kernel.RBF{Gamma: 1.0 / float64(cfg.Dim)}
	}
	return nil
}

// NewTrainer returns an empty incremental trainer.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Trainer{
		cfg: cfg,
		sg:  kernel.NewSlidingGram(cfg.Kernel, cfg.Window, cfg.Dim),
	}, nil
}

// Len returns the live window size.
func (t *Trainer) Len() int { return t.sg.Len() }

// Kernel returns the kernel the window is built with.
func (t *Trainer) Kernel() kernel.Kernel { return t.cfg.Kernel }

// Add appends a selected sample to the window, evicting the oldest when
// full, and keeps the carried dual weights aligned: the evicted row's
// weight is dropped, the newcomer starts at zero (WarmStartAlpha
// redistributes the lost mass at the next refresh).
func (t *Trainer) Add(x []float64) {
	evicted := t.sg.Append(x)
	if t.prev == nil {
		return
	}
	if evicted && len(t.prev) > 0 {
		copy(t.prev, t.prev[1:])
		t.prev = t.prev[:len(t.prev)-1]
	}
	if len(t.prev) < t.sg.Len() {
		t.prev = append(t.prev, 0)
	}
}

// Refresh fits a one-class model on the current window, warm-starting
// from the previous refresh's dual weights when available. The returned
// SolveInfo describes the solve that produced the returned model (so
// after a fallback it is the cold solve's info, with WarmStart false).
// fellBack reports that the warm solve failed to converge and the cold
// path was used instead.
func (t *Trainer) Refresh() (m *svm.OneClass, info svm.SolveInfo, fellBack bool, err error) {
	if t.sg.Len() == 0 {
		return nil, svm.SolveInfo{}, false, errors.New("stream: refresh on an empty window")
	}
	// The window matrix is leased from the columnar arena: the solver
	// copies support-vector rows into the model it returns, so nothing
	// retains the lease past this call and the refresh loop stops paying
	// an O(window·dim) allocation per cycle.
	win := colmat.Get(t.sg.Len(), t.cfg.Dim)
	defer colmat.Put(win)
	t.sg.WindowInto(win)
	cfg := svm.OneClassConfig{Nu: t.cfg.Nu, Tol: t.cfg.Tol, MaxIters: t.cfg.MaxIters}
	m, info, err = svm.FitOneClassPrecomputed(win, t.cfg.Kernel, t.sg.At, cfg, t.prev)
	if err != nil {
		return nil, svm.SolveInfo{}, false, err
	}
	if info.WarmStart && !info.Converged {
		// The warm start stalled short of the KKT tolerance: retrain
		// cold rather than serve a model without its convergence
		// certificate.
		warmstartFallbacks.Inc()
		t.falls++
		m, info, err = svm.FitOneClassPrecomputed(win, t.cfg.Kernel, t.sg.At, cfg, nil)
		if err != nil {
			return nil, svm.SolveInfo{}, false, err
		}
		fellBack = true
	}
	if info.WarmStart {
		t.warm++
	}
	t.fits++
	t.prev = info.Alpha
	return m, info, fellBack, nil
}

// WindowStats summarizes a FitWindow replay.
type WindowStats struct {
	Rows        int // samples streamed through the window
	Refreshes   int // fits performed
	WarmStarts  int // refreshes that used (and kept) a warm start
	Fallbacks   int // warm starts that failed to converge and refit cold
	FinalWindow int // live window size at the final fit
}

// FitWindow replays the rows of x through the incremental trainer —
// sliding window with eviction, a warm-started refresh every refitEvery
// rows and a final refresh on the last row — and returns the final
// model. It is the deterministic offline entry point for the streaming
// trainer: the conformance registry fits through it (see
// internal/testkit), which pins the incremental path to the same
// invariants, metamorphic relations, and differential scoring contracts
// as every batch learner.
func FitWindow(x *linalg.Matrix, k kernel.Kernel, window, refitEvery int, cfg svm.OneClassConfig) (*svm.OneClass, WindowStats, error) {
	if x.Rows == 0 {
		return nil, WindowStats{}, errors.New("stream: empty training set")
	}
	if refitEvery <= 0 {
		refitEvery = 32
	}
	tr, err := NewTrainer(TrainerConfig{
		Window: window, Dim: x.Cols, Nu: cfg.Nu, Tol: cfg.Tol, MaxIters: cfg.MaxIters,
		Kernel: k,
	})
	if err != nil {
		return nil, WindowStats{}, err
	}
	var m *svm.OneClass
	stats := WindowStats{Rows: x.Rows}
	for i := 0; i < x.Rows; i++ {
		tr.Add(x.Row(i))
		if (i+1)%refitEvery != 0 && i != x.Rows-1 {
			continue
		}
		mi, info, fellBack, err := tr.Refresh()
		if err != nil {
			return nil, stats, err
		}
		m = mi
		stats.Refreshes++
		if info.WarmStart {
			stats.WarmStarts++
		}
		if fellBack {
			stats.Fallbacks++
		}
	}
	stats.FinalWindow = tr.Len()
	return m, stats, nil
}
