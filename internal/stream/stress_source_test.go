package stream

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

func TestISAStressSourceDeterministic(t *testing.T) {
	draw := func() ([]Candidate, []SimResult) {
		s, err := NewSource("isa-stress:loop-nest", 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		var cs []Candidate
		var rs []SimResult
		for i := 0; i < 20; i++ {
			c := s.Next()
			cs = append(cs, c)
			rs = append(rs, s.Simulate(c))
		}
		return cs, rs
	}
	c1, r1 := draw()
	c2, r2 := draw()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(r1, r2) {
		t.Fatal("isa-stress source is not a pure function of its seed")
	}
	if r1[0].Gain == 0 {
		t.Fatal("first simulated stress program hit no coverage bins")
	}
}

func TestISAStressSourceNamesAndErrors(t *testing.T) {
	s, err := NewSource("isa-stress", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "isa-stress:hazard-dense" {
		t.Fatalf("default profile name %q, want isa-stress:hazard-dense", s.Name())
	}
	if s.Dim() != len(isa.FeatureNames) {
		t.Fatalf("dim %d, want %d", s.Dim(), len(isa.FeatureNames))
	}
	if _, err := NewSource("isa-stress:no-such-profile", 1, 0); err == nil {
		t.Fatal("unknown stress profile accepted")
	}
}

// TestISAStressSourceShift: after the planted shift the stream emits
// store-heavy programs — measurably more stores than the pre-shift
// alu-heavy stream.
func TestISAStressSourceShift(t *testing.T) {
	const shiftAt = 10
	s, err := NewSource("isa-stress:alu-heavy", 3, shiftAt)
	if err != nil {
		t.Fatal(err)
	}
	storeFrac := func(c Candidate) float64 {
		p := c.payload.(isa.Program)
		return isa.RealizedMix(p).Store
	}
	var pre, post float64
	for i := 0; i < 2*shiftAt; i++ {
		c := s.Next()
		if i < shiftAt {
			pre += storeFrac(c) / shiftAt
		} else {
			post += storeFrac(c) / shiftAt
		}
	}
	if post <= pre+0.3 {
		t.Fatalf("store fraction pre %.3f post %.3f — planted shift did not move the mix", pre, post)
	}
}
