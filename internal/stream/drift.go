package stream

import "math"

// Detector decides *when* the streaming loop refreshes its model: it
// watches the decision-value stream the serving model emits and signals
// when the score distribution has shifted — the paper's constraint that
// a mined model is only valid for the data regime it was mined from
// (Section 5), turned into a refresh policy. Implementations must be
// deterministic: the same observation sequence produces the same
// trigger points.
type Detector interface {
	// Observe feeds one decision value; reports true when drift is
	// signaled at this observation.
	Observe(v float64) bool
	// Score returns the current drift statistic (for the obs gauge).
	Score() float64
	// Reset clears all state after a refresh.
	Reset()
}

// PageHinkley is the two-sided Page–Hinkley test over the decision
// stream: it tracks the cumulative deviation of observations from their
// running mean and signals when the deviation exceeds Lambda in either
// direction. O(1) per observation, fully deterministic — the canonical
// streaming change-point detector for concept drift.
//
// A downward shift (scores trending negative) means the generator has
// wandered into territory the model calls novel — the model is stale
// and the window holds the new regime; an upward shift means the
// selected window has saturated the support region. Both call for a
// refresh.
type PageHinkley struct {
	Delta  float64 // per-observation magnitude tolerance, default 0.005
	Lambda float64 // detection threshold, default 0.5
	MinObs int     // observations before a trigger is allowed, default 16

	n    int
	mean float64
	// Increase branch: m accumulates (x − mean − Delta); drift when
	// m − min(m) exceeds Lambda. Decrease branch mirrors it.
	mUp, minUp     float64
	mDown, maxDown float64
}

// NewPageHinkley returns a detector with the given threshold; zero
// values select the documented defaults.
func NewPageHinkley(delta, lambda float64, minObs int) *PageHinkley {
	ph := &PageHinkley{Delta: delta, Lambda: lambda, MinObs: minObs}
	ph.normalize()
	return ph
}

func (ph *PageHinkley) normalize() {
	if ph.Delta <= 0 {
		ph.Delta = 0.005
	}
	if ph.Lambda <= 0 {
		ph.Lambda = 0.5
	}
	if ph.MinObs <= 0 {
		ph.MinObs = 16
	}
}

// Observe implements Detector.
func (ph *PageHinkley) Observe(v float64) bool {
	ph.normalize()
	ph.n++
	ph.mean += (v - ph.mean) / float64(ph.n)
	ph.mUp += v - ph.mean - ph.Delta
	if ph.mUp < ph.minUp {
		ph.minUp = ph.mUp
	}
	ph.mDown += v - ph.mean + ph.Delta
	if ph.mDown > ph.maxDown {
		ph.maxDown = ph.mDown
	}
	return ph.n >= ph.MinObs && ph.Score() > ph.Lambda
}

// Score implements Detector: the larger of the two one-sided Page–
// Hinkley statistics.
func (ph *PageHinkley) Score() float64 {
	up := ph.mUp - ph.minUp       // how far scores have risen
	down := ph.maxDown - ph.mDown // how far scores have fallen
	return math.Max(up, down)
}

// Reset implements Detector.
func (ph *PageHinkley) Reset() {
	ph.n = 0
	ph.mean = 0
	ph.mUp, ph.minUp = 0, 0
	ph.mDown, ph.maxDown = 0, 0
}
