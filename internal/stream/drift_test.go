package stream

import "testing"

// A stable stream must never trigger; a shifted stream must, and fast.
func TestPageHinkleyDetectsShift(t *testing.T) {
	ph := NewPageHinkley(0, 0, 0)
	for i := 0; i < 200; i++ {
		if ph.Observe(0.1) {
			t.Fatalf("false trigger at stable observation %d (score %g)", i, ph.Score())
		}
	}
	triggered := -1
	for i := 0; i < 100; i++ {
		if ph.Observe(-0.9) {
			triggered = i
			break
		}
	}
	if triggered < 0 {
		t.Fatalf("no trigger within 100 shifted observations (score %g)", ph.Score())
	}
	if ph.Score() <= ph.Lambda {
		t.Fatalf("trigger reported but score %g <= lambda %g", ph.Score(), ph.Lambda)
	}
}

// MinObs gates the trigger: even a violent first observation must wait.
func TestPageHinkleyMinObs(t *testing.T) {
	ph := NewPageHinkley(0.001, 0.01, 8)
	for i := 0; i < 7; i++ {
		if ph.Observe(float64(1 + i*1000)) {
			t.Fatalf("trigger at observation %d, before MinObs=8", i+1)
		}
	}
}

// Same observation sequence, same trigger points — the determinism
// contract the loop inherits.
func TestPageHinkleyDeterministic(t *testing.T) {
	seq := make([]float64, 0, 300)
	for i := 0; i < 150; i++ {
		seq = append(seq, 0.05*float64(i%7))
	}
	for i := 0; i < 150; i++ {
		seq = append(seq, -1.2+0.01*float64(i%5))
	}
	run := func() []int {
		ph := NewPageHinkley(0, 0, 0)
		var hits []int
		for i, v := range seq {
			if ph.Observe(v) {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("expected at least one trigger in the shifted half")
	}
	if len(a) != len(b) {
		t.Fatalf("trigger counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trigger %d at different positions: %d vs %d", i, a[i], b[i])
		}
	}
}

// Reset must return the detector to its virgin state.
func TestPageHinkleyReset(t *testing.T) {
	ph := NewPageHinkley(0, 0, 0)
	for i := 0; i < 30; i++ {
		ph.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		ph.Observe(-2.0)
	}
	if ph.Score() == 0 {
		t.Fatal("expected nonzero score before reset")
	}
	ph.Reset()
	if ph.Score() != 0 {
		t.Fatalf("score %g after reset, want 0", ph.Score())
	}
	for i := 0; i < 200; i++ {
		if ph.Observe(0.1) {
			t.Fatalf("trigger at %d after reset on a stable stream", i)
		}
	}
}
