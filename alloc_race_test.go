//go:build race

package repro_test

// The race detector instruments every allocation site, so steady-state
// allocation counts measured under -race do not reflect the plain
// build the floors in scripts/alloc_floor.txt were set against.
func init() { raceEnabled = true }
