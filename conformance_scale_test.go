//go:build !slowconformance

package repro_test

// Default conformance scale: sized so `go test ./...` stays fast enough
// for every push. The slowconformance build tag (see
// conformance_scale_slow_test.go) multiplies the sweeps for the
// nightly-style long run: `go test -tags=slowconformance -run Conformance .`

const (
	// sweepScale multiplies each conformer's per-sweep case count.
	sweepScale = 1
	// diffCases is the per-kind case count for the differential
	// scoring-path sweep over the persisted model kinds.
	diffCases = 50
)
