package repro_test

// Deterministic cluster chaos storm (ISSUE 7): a real 3-node cluster —
// three serve.Servers on loopback behind the consistent-hash router —
// driven through a seeded fault plan that partitions owners
// (cluster.replica_down), fails the routing step (cluster.route), and
// injects replica-side scoring faults (serve.kernel_eval), plus one
// genuine node kill mid-run: the victim's listener really closes, so
// the router eats a refused connection, fails the chunk over to
// another owner, and routes around the corpse from then on.
//
// Three claims, mirroring the single-node chaos test:
//
//  1. Resilience: every request eventually answers 200 through router
//     failover and caller retry, and every prediction is bit-identical
//     to in-process scoring — chaos and node death may delay or move
//     an answer, never change it.
//  2. Determinism: two complete storms with the same seed produce
//     identical counter snapshots — same partitions, same failovers,
//     same per-replica request counts, byte for byte. A cluster chaos
//     failure is reproducible from one int64.
//  3. The seed matters: a different seed kills a different node and
//     draws a different fault sequence.
//
// Determinism holds because requests are driven serially one row at a
// time (SpreadMin above any batch keeps each request on a single
// replica, so the replica-side kernel_eval stream is consumed in a
// fixed order — fan-out bit-identity is pinned fault-free by the
// testkit cluster lane), the router draws its per-owner partition
// faults serially before any I/O, the breaker clock is frozen, the
// kill happens at a fixed point in the schedule, and the comparison
// uses counters only (histograms measure wall time, which chaos makes
// noisy by design). The nightly slowconformance run multiplies the
// sweep count via sweepScale.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apps/modelzoo"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
)

// clusterChaosPlan partitions ~15% of owner checks, fails ~5% of
// routing steps, and injects 5% errors + latency at the replica-side
// kernel-eval site. No corruption: a corrupted predict body turns into
// a permanent 400, and this storm's contract is that every request
// eventually succeeds.
func clusterChaosPlan(seed int64) fault.Plan {
	return fault.Plan{Seed: seed, Sites: map[string]fault.SiteConfig{
		fault.SiteClusterRoute: {
			ErrRate: 0.05, LatencyRate: 0.05, Latency: time.Millisecond,
		},
		fault.SiteClusterReplicaDown: {
			ErrRate: 0.15, LatencyRate: 0.05, Latency: time.Millisecond,
		},
		fault.SiteKernelEval: {
			ErrRate: 0.05, LatencyRate: 0.05, Latency: time.Millisecond,
		},
	}}
}

// clusterChaosRequest drives one row through the router handler,
// retrying until 200: injected route errors (500), full-owner
// partitions (503), and failover exhaustion (502) are all retryable
// storm weather; anything else fails the run.
func clusterChaosRequest(t *testing.T, h http.Handler, kind string, row []float64) float64 {
	t.Helper()
	body, err := json.Marshal(map[string]any{"instances": [][]float64{row}})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 200; attempt++ {
		req := httptest.NewRequest(http.MethodPost, "/predict/"+kind, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			var resp struct {
				Predictions []float64 `json:"predictions"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("%s: decode: %v", kind, err)
			}
			if len(resp.Predictions) != 1 {
				t.Fatalf("%s: %d predictions for one row", kind, len(resp.Predictions))
			}
			return resp.Predictions[0]
		case http.StatusInternalServerError, http.StatusServiceUnavailable,
			http.StatusBadGateway, http.StatusGatewayTimeout:
			continue // seeded storm weather; the retry is part of the schedule
		default:
			t.Fatalf("%s: unexpected status %d: %s", kind, rec.Code, rec.Body.String())
		}
	}
	t.Fatalf("%s: no 200 in 200 attempts — storm too hot to be useful", kind)
	return 0
}

// runClusterChaos executes one complete storm: fresh metrics, fresh
// 3-node cluster, every probe of every kind driven serially through
// the router under the plan, sweepScale passes, one node killed midway
// through the first pass. Returns predictions per kind (last pass) and
// the final counter snapshot.
func runClusterChaos(t *testing.T, trained []modelzoo.Trained, seed int64) (map[string][]float64, map[string]int64) {
	t.Helper()
	obs.ResetMetrics()
	fault.Activate(clusterChaosPlan(seed))
	defer fault.Deactivate()

	frozen := time.Unix(1_700_000_000, 0)
	lc, err := cluster.NewLocal(3, serve.Config{MaxBatch: 1, RequestTimeout: 10 * time.Second}, cluster.Config{
		Replication: 3,
		SpreadMin:   1 << 20, // single-replica requests: keep replica-side fault draws serial
		DownAfter:   1,
		Seed:        seed,
		Now:         func() time.Time { return frozen },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// Deactivate during setup so boot probes and loads draw nothing.
	fault.Deactivate()
	for _, tr := range trained {
		a, err := model.Encode(tr.Model, model.Meta{Name: string(tr.Kind), Seed: seed})
		if err != nil {
			t.Fatalf("%s: encode: %v", tr.Kind, err)
		}
		if err := lc.LoadDirect(string(tr.Kind), a); err != nil {
			t.Fatal(err)
		}
	}
	if n := lc.ProbeAll(t.Context()); n != 3 {
		t.Fatalf("boot: %d/3 replicas healthy", n)
	}
	fault.Activate(clusterChaosPlan(seed))

	// The kill schedule: midway through the first pass, close the
	// listener of the primary owner of a seed-chosen later kind — the
	// storm is then guaranteed to route requests at the corpse and
	// fail them over.
	h := lc.Router.Handler()
	killAfter := len(trained) / 2
	victimKind := string(trained[killAfter+int(seed%int64(len(trained)-killAfter))].Kind)
	victim := lc.Router.Owners(victimKind)[0]

	preds := make(map[string][]float64, len(trained))
	for pass := 0; pass < sweepScale; pass++ {
		for ki, tr := range trained {
			if pass == 0 && ki == killAfter {
				lc.Kill(victim)
			}
			out := make([]float64, tr.Probes.Rows)
			for i := 0; i < tr.Probes.Rows; i++ {
				out[i] = clusterChaosRequest(t, h, string(tr.Kind), tr.Probes.Row(i))
			}
			preds[string(tr.Kind)] = out
		}
	}

	counters := make(map[string]int64)
	for _, m := range obs.Snapshot() {
		if m.Kind == "counter" {
			counters[m.Name] = m.Value
		}
	}
	return preds, counters
}

func TestClusterChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos skipped in -short")
	}
	trained, err := modelzoo.TrainAll(13, 48, 16)
	if err != nil {
		t.Fatal(err)
	}

	const stormSeed = 20_260_808
	preds1, counters1 := runClusterChaos(t, trained, stormSeed)

	// Claim 1: the storm never changes an answer.
	for _, tr := range trained {
		got := preds1[string(tr.Kind)]
		for i := range got {
			if got[i] != tr.Want[i] {
				t.Errorf("%s probe %d: cluster storm prediction %v != in-process %v",
					tr.Kind, i, got[i], tr.Want[i])
			}
		}
	}

	// The storm actually bit: partitions drawn, routing faults injected,
	// and the node kill forced real failovers. A storm that injected
	// nothing proves nothing.
	for _, name := range []string{
		"fault.cluster.replica_down.errors",
		"fault.cluster.route.errors",
		"cluster.failovers",
		"cluster.partitions",
	} {
		if counters1[name] == 0 {
			t.Errorf("counter %s = 0 — the storm did not engage", name)
		}
	}

	// Claim 2: same seed, same storm — snapshots identical.
	preds2, counters2 := runClusterChaos(t, trained, stormSeed)
	for kind, got := range preds2 {
		for i := range got {
			if got[i] != preds1[kind][i] {
				t.Errorf("%s probe %d: second storm predicted %v, first %v", kind, i, got[i], preds1[kind][i])
			}
		}
	}
	if err := diffCounters(counters1, counters2); err != nil {
		t.Errorf("same seed, different counters: %v", err)
	}

	// Claim 3: a different seed is a different storm.
	_, counters3 := runClusterChaos(t, trained, stormSeed+1)
	if diffCounters(counters1, counters3) == nil {
		t.Errorf("seeds %d and %d produced identical counter snapshots", stormSeed, stormSeed+1)
	}
}
