#!/usr/bin/env bash
# Streaming-loop smoke test: the online knowledge-discovery loop against
# a real edaserved, end to end.
#
#   1. build cmd/edaserved and cmd/edaloop
#   2. boot edaserved with no models (readyz stays 503 until the loop
#      publishes its first artifact)
#   3. boot edaloop with a planted distribution shift (-shift-at): it
#      selects novel candidates, retrains incrementally, and pushes
#      every refreshed model to the edaserved via POST /models/load
#   4. wait for the loop's own /loop/status to report a drift-triggered
#      refresh — the planted shift must be detected, not just a cadence
#      refresh
#   5. hammer /predict on the edaserved while the loop keeps hot-swapping
#      refreshed models — zero requests may fail across the swaps
#   6. SIGTERM the loop mid-stream and require a graceful drain (exit 0,
#      trajectory summary, "drained, exiting"); then drain the edaserved
#
# CI runs this as the `stream-smoke` job; `make stream-smoke` runs it
# locally. Set GO to use a specific toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
BASE_PORT="${STREAM_SMOKE_PORT:-18280}"
SERVE_ADDR="127.0.0.1:$BASE_PORT"
SERVE_URL="http://$SERVE_ADDR"
LOOP_ADDR="127.0.0.1:$((BASE_PORT + 1))"
LOOP_URL="http://$LOOP_ADDR"
WORK="$(mktemp -d)"
SERVE_PID=""
LOOP_PID=""

cleanup() {
	for pid in "$LOOP_PID" "$SERVE_PID"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -9 "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build =="
"$GO" build -o "$WORK/edaserved" ./cmd/edaserved
"$GO" build -o "$WORK/edaloop" ./cmd/edaloop
"$WORK/edaloop" -version

echo "== boot edaserved (no models) =="
"$WORK/edaserved" -addr "$SERVE_ADDR" -drain-timeout 5s >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 50); do
	curl -fsS "$SERVE_URL/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done
curl -fsS "$SERVE_URL/healthz" >/dev/null || {
	echo "stream_smoke: edaserved never became healthy" >&2
	cat "$WORK/serve.log" >&2
	exit 1
}

echo "== boot edaloop (planted shift at 600, pushing every swap) =="
"$WORK/edaloop" -seed 42 -source isa -candidates 1000000 \
	-window 256 -warmup 32 -shift-at 600 -min-refit 8 -refresh-max 64 \
	-addr "$LOOP_ADDR" -artifact-dir "$WORK/artifacts" -push-url "$SERVE_URL" \
	>"$WORK/loop.log" 2>&1 &
LOOP_PID=$!

echo "== wait for a drift-triggered refresh =="
drift=""
for _ in $(seq 1 300); do
	if curl -fsS "$LOOP_URL/loop/status" 2>/dev/null | grep -q '"reason":"drift"'; then
		drift=1
		break
	fi
	if ! kill -0 "$LOOP_PID" 2>/dev/null; then
		echo "stream_smoke: edaloop died before the drift refresh" >&2
		cat "$WORK/loop.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [ -z "$drift" ]; then
	echo "stream_smoke: no drift-triggered refresh within 30s" >&2
	cat "$WORK/loop.log" >&2
	curl -fsS "$LOOP_URL/loop/status" >&2 || true
	exit 1
fi
echo "drift refresh observed (planted shift detected)"

echo "== hammer /predict across live hot-swaps =="
swaps_before="$(grep -c 'published' "$WORK/loop.log" || true)"
BODY='{"instances": [[0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5]]}'
fails=0
for i in $(seq 1 200); do
	code="$(curl -s -o "$WORK/predict.json" -w '%{http_code}' \
		-X POST "$SERVE_URL/predict/stream-oneclass" \
		-H 'Content-Type: application/json' -d "$BODY")"
	if [ "$code" != "200" ]; then
		fails=$((fails + 1))
		echo "stream_smoke: predict $i returned HTTP $code: $(cat "$WORK/predict.json")" >&2
	fi
done
swaps_after="$(grep -c 'published' "$WORK/loop.log" || true)"
if [ "$fails" != "0" ]; then
	echo "stream_smoke: $fails/200 predicts failed across hot-swaps (want 0)" >&2
	cat "$WORK/serve.log" >&2
	exit 1
fi
if [ "$swaps_after" -le "$swaps_before" ]; then
	echo "stream_smoke: no model swap happened while hammering ($swaps_before -> $swaps_after)" >&2
	cat "$WORK/loop.log" >&2
	exit 1
fi
echo "200/200 predicts answered 200 across $((swaps_after - swaps_before)) live swap(s)"
grep -q '"predictions"' "$WORK/predict.json"

echo "== graceful drain (SIGTERM mid-stream) =="
kill -TERM "$LOOP_PID"
exit_code=0
wait "$LOOP_PID" || exit_code=$?
LOOP_PID=""
if [ "$exit_code" != "0" ]; then
	echo "stream_smoke: edaloop exited $exit_code on SIGTERM (want 0)" >&2
	cat "$WORK/loop.log" >&2
	exit 1
fi
grep -q "drained, exiting" "$WORK/loop.log"
grep -q "swaps" "$WORK/loop.log" # the trajectory summary printed on the way out

echo "== drain edaserved =="
kill -TERM "$SERVE_PID"
exit_code=0
wait "$SERVE_PID" 2>/dev/null || exit_code=$?
SERVE_PID=""
if [ "$exit_code" != "0" ]; then
	echo "stream_smoke: edaserved exited $exit_code on SIGTERM (want 0)" >&2
	cat "$WORK/serve.log" >&2
	exit 1
fi

echo "stream_smoke: OK"
