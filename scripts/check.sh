#!/usr/bin/env bash
# Full correctness gate: format check, vet, build, and the complete test
# suite under the race detector. The parallel compute layer
# (internal/parallel and its users) and the observability layer
# (internal/obs) must stay race-clean; run this before every commit that
# touches a concurrent path. CI runs it as the `race` job.
#
# Set GO to use a specific toolchain, e.g. `GO=go1.22.12 ./scripts/check.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"

echo "== gofmt =="
fmt_out="$(gofmt -l .)"
if [ -n "$fmt_out" ]; then
	echo "gofmt: these files need formatting:" >&2
	echo "$fmt_out" >&2
	exit 1
fi

echo "== go vet =="
"$GO" vet ./...

echo "== go build =="
"$GO" build ./...

echo "== go test -race =="
"$GO" test -race ./...

# The cluster chaos storm is the most concurrency-dense path in the
# repo (router fan-out goroutines, per-replica breakers, node kill);
# its determinism contract must hold at every worker-pool width, so
# sweep the widths that shift scoring onto different parallel paths.
echo "== cluster chaos storm at 1/2/8 workers (race) =="
for w in 1 2 8; do
	echo "-- REPRO_WORKERS=$w"
	REPRO_WORKERS="$w" "$GO" test -race -count=1 -run 'TestClusterChaosStorm' .
done

# The columnar arena's aliasing property (a buffer re-leased under a
# different shape never aliases live data) must hold at every pool
# width; the hammer leases/dirties/returns from every worker.
echo "== colmat alias hammer at 1/2/8 workers (race) =="
for w in 1 2 8; do
	echo "-- REPRO_WORKERS=$w"
	REPRO_WORKERS="$w" "$GO" test -race -count=1 -run 'TestAliasHammer|TestShapeIsolation' ./internal/core/colmat/
done

# The stress-program generator feeds the versioned isa-stress dataset,
# so its seed-purity contract (same int64 seed -> same programs, same
# simulated outcomes) must hold at every worker-pool width: the batch
# simulate/feature fan-out must not leak nondeterminism into the export.
echo "== stress-generator seed purity at 1/2/8 workers (race) =="
for w in 1 2 8; do
	echo "-- REPRO_WORKERS=$w"
	REPRO_WORKERS="$w" "$GO" test -race -count=1 -run 'TestStressPureFunctionOfSeed' ./internal/isa/
done

# Allocation floors run WITHOUT -race: the race detector instruments
# allocation sites and would report counts the floors were never set
# against (alloc_test.go skips itself under -race for the same reason).
echo "== alloc gate (no race) =="
"$GO" test -count=1 -run 'TestAllocFloor' .

echo "check: OK"
