#!/usr/bin/env sh
# Full correctness gate: vet, build, and the complete test suite under the
# race detector. The parallel compute layer (internal/parallel and its
# users) must stay race-clean; run this before every commit that touches a
# concurrent path.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "check: OK"
