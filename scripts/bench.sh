#!/usr/bin/env bash
# CI benchmark-regression harness: run every benchmark once at the small
# -short sizes, convert the output to BENCH_ci.json, and upload-friendly
# raw text to BENCH_ci.txt. The job exists to catch builds/panics in the
# benchmark harnesses and to archive a per-commit cost trend; it does NOT
# gate on timings (CI machines are too noisy for that), so the script
# fails only if `go test` itself fails.
#
# Set GO to use a specific toolchain, e.g. `GO=go1.22.12 ./scripts/bench.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
OUT_JSON="${BENCH_OUT:-BENCH_ci.json}"
OUT_TXT="${OUT_JSON%.json}.txt"

echo "== go test -short -bench=. =="
"$GO" test -short -run='^$' -bench=. -benchmem -benchtime=1x -count=1 ./... | tee "$OUT_TXT"

awk '
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	# go test appends the GOMAXPROCS count ("-8") to every name when it
	# is >1; strip it so entries match BENCH_baseline.json on any machine.
	sub(/-[0-9]+$/, "", name)
	bytes = "null"; allocs = "null"
	for (i = 4; i <= NF; i++) {
		if ($i == "B/op") bytes = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, bytes, allocs
}
BEGIN { printf "[\n" }
END { if (n) printf "\n"; printf "]\n" }
' "$OUT_TXT" > "$OUT_JSON"

echo "bench: wrote $OUT_JSON ($(grep -c '"name"' "$OUT_JSON" || true) benchmarks)"
