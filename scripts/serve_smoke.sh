#!/usr/bin/env bash
# Serving smoke test: the full artifact lifecycle against real binaries.
#
#   1. build cmd/edamine and cmd/edaserved
#   2. train + save one artifact of every kind (`edamine -save-model`)
#   3. boot edaserved on the artifact directory
#   4. poll /readyz until ready, then require 200 from one /predict call
#   5. SIGTERM the server and require a graceful exit (status 0)
#
# CI runs this as the `smoke` job; it is also the quickest way to check
# a local build end to end. Set GO to use a specific toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
# All probes go through SERVE_URL, so the smoke can also be pointed at
# an already-running server (or a cluster router fronting one).
SERVE_URL="${SERVE_URL:-http://$ADDR}"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
	if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
		kill -9 "$SERVER_PID" 2>/dev/null || true
	fi
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build =="
"$GO" build -o "$WORK/edamine" ./cmd/edamine
"$GO" build -o "$WORK/edaserved" ./cmd/edaserved
"$WORK/edaserved" -version
"$WORK/edamine" -version

echo "== train + save artifacts =="
"$WORK/edamine" -quick -save-model "$WORK" models
ls "$WORK"/*.model.json >/dev/null

echo "== boot edaserved =="
"$WORK/edaserved" -addr "$ADDR" -model-dir "$WORK" -drain-timeout 5s \
	>"$WORK/server.log" 2>&1 &
SERVER_PID=$!

ready=""
for _ in $(seq 1 50); do
	if curl -fsS "$SERVE_URL/readyz" >/dev/null 2>&1; then
		ready=1
		break
	fi
	if ! kill -0 "$SERVER_PID" 2>/dev/null; then
		echo "smoke: server died during startup" >&2
		cat "$WORK/server.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [ -z "$ready" ]; then
	echo "smoke: server never became ready" >&2
	cat "$WORK/server.log" >&2
	exit 1
fi
echo "readyz: $(curl -fsS "$SERVE_URL/readyz")"

echo "== predict =="
status="$(curl -s -o "$WORK/predict.json" -w '%{http_code}' \
	-X POST "$SERVE_URL/predict/zoo-ridge" \
	-H 'Content-Type: application/json' \
	-d '{"instances": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]]}')"
if [ "$status" != "200" ]; then
	echo "smoke: predict returned HTTP $status" >&2
	cat "$WORK/predict.json" >&2
	cat "$WORK/server.log" >&2
	exit 1
fi
grep -q '"predictions"' "$WORK/predict.json"
echo "predict: $(cat "$WORK/predict.json")"

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$SERVER_PID"
exit_code=0
wait "$SERVER_PID" || exit_code=$?
SERVER_PID=""
if [ "$exit_code" != "0" ]; then
	echo "smoke: server exited $exit_code on SIGTERM (want 0)" >&2
	cat "$WORK/server.log" >&2
	exit 1
fi
grep -q "drained, exiting" "$WORK/server.log"

echo "smoke: OK"
