#!/usr/bin/env bash
# Ad-hoc load generator for a running edaserved or edarouter: fire N
# single-instance predict requests from C concurrent curl clients —
# cycling X-Priority low/normal/high across clients — and report wall
# time, throughput, per-priority shed (429) rates, and the server's own
# batching/shedding metrics from /metrics.
# BenchmarkServeThroughput and BenchmarkClusterThroughput are the
# in-process twins that CI records via scripts/bench.sh; this script is
# for poking a live server.
#
# Usage:
#   scripts/loadgen.sh [-a host:port] [-m model] [-n requests] [-c clients] [-d dim]
#
#   scripts/loadgen.sh -a localhost:8080 -m zoo-ridge -n 500 -c 8 -d 8
#   SERVE_URL=http://router:9090 scripts/loadgen.sh -m zoo-ridge
#
# SERVE_URL (env) overrides -a entirely — point it at any base URL,
# including a cluster router.
set -euo pipefail

ADDR="localhost:8080"
MODEL="zoo-ridge"
REQUESTS=200
CLIENTS=8
DIM=8

while getopts "a:m:n:c:d:h" opt; do
	case "$opt" in
	a) ADDR="$OPTARG" ;;
	m) MODEL="$OPTARG" ;;
	n) REQUESTS="$OPTARG" ;;
	c) CLIENTS="$OPTARG" ;;
	d) DIM="$OPTARG" ;;
	h | *)
		grep '^#' "$0" | sed 's/^# \{0,1\}//'
		exit 0
		;;
	esac
done

BASE="${SERVE_URL:-http://$ADDR}"

# One instance of DIM small deterministic values.
instance="$(awk -v d="$DIM" 'BEGIN {
	printf "["
	for (i = 0; i < d; i++) printf "%s%.2f", (i ? ", " : ""), (i % 10) / 10
	printf "]"
}')"
body="{\"instances\": [$instance]}"
url="$BASE/predict/$MODEL"

curl -fsS "$BASE/readyz" >/dev/null || {
	echo "loadgen: $BASE is not ready" >&2
	exit 1
}

# Each worker runs at one priority tier and reports "fails sheds" —
# hard failures vs 429s its tier absorbed.
worker() {
	local n=$1 prio=$2 fails=0 sheds=0
	for _ in $(seq 1 "$n"); do
		code="$(curl -s -o /dev/null -w '%{http_code}' \
			-X POST "$url" -H 'Content-Type: application/json' \
			-H "X-Priority: $prio" -d "$body")"
		case "$code" in
		200) ;;
		429) sheds=$((sheds + 1)) ;;
		*) fails=$((fails + 1)) ;;
		esac
	done
	echo "$fails $sheds"
}

PRIORITIES=(low normal high)
per_client=$((REQUESTS / CLIENTS))
[ "$per_client" -ge 1 ] || per_client=1
total=$((per_client * CLIENTS))

echo "loadgen: $total requests -> $url ($CLIENTS clients x $per_client, priorities cycled low/normal/high)"
start=$(date +%s.%N)
fail_files=()
prio_of=()
for c in $(seq 1 "$CLIENTS"); do
	f="$(mktemp)"
	fail_files+=("$f")
	prio="${PRIORITIES[$(((c - 1) % 3))]}"
	prio_of+=("$prio")
	worker "$per_client" "$prio" >"$f" &
done
wait
end=$(date +%s.%N)

fails=0
declare -A sent shed
for p in "${PRIORITIES[@]}"; do
	sent[$p]=0
	shed[$p]=0
done
for i in "${!fail_files[@]}"; do
	f="${fail_files[$i]}"
	p="${prio_of[$i]}"
	read -r wfails wsheds <"$f"
	fails=$((fails + wfails))
	sent[$p]=$((sent[$p] + per_client))
	shed[$p]=$((shed[$p] + wsheds))
	rm -f "$f"
done

total_shed=0
for p in "${PRIORITIES[@]}"; do
	total_shed=$((total_shed + shed[$p]))
done
awk -v t="$total" -v s="$start" -v e="$end" -v f="$fails" -v sh="$total_shed" 'BEGIN {
	el = e - s
	printf "loadgen: %d ok, %d shed (429), %d failed in %.2fs (%.0f req/s)\n", t - f - sh, sh, f, el, t / el
}'
echo "per-priority shed rates (caller side):"
for p in "${PRIORITIES[@]}"; do
	awk -v p="$p" -v n="${sent[$p]}" -v sh="${shed[$p]}" 'BEGIN {
		printf "  %-6s %5d sent, %5d shed (%.1f%%)\n", p, n, sh, n ? 100 * sh / n : 0
	}'
done
echo "server metrics:"
curl -fsS "$BASE/metrics" |
	python3 -c "
import json, sys
m = {x['name']: x for x in json.load(sys.stdin)}
for name in ('serve.batches', 'serve.instances_scored', 'serve.throttled_429',
             'serve.shed.low', 'serve.shed.normal', 'serve.shed.high',
             'serve.kernel_row_cache_hits', 'serve.kernel_row_cache_misses',
             'cluster.requests_routed', 'cluster.throttled_429',
             'cluster.shed.low', 'cluster.shed.normal', 'cluster.shed.high',
             'cluster.fanouts', 'cluster.failovers'):
    if name in m:
        print(f'  {name}: {m[name].get(\"value\", 0)}')"

[ "$fails" -eq 0 ]
