#!/usr/bin/env bash
# Ad-hoc load generator for a running edaserved or edarouter: fire N
# single-instance predict requests from C concurrent curl clients —
# cycling X-Priority low/normal/high across clients — and report wall
# time, throughput, per-priority shed (429) rates, and the server's own
# batching/shedding metrics from /metrics.
# BenchmarkServeThroughput and BenchmarkClusterThroughput are the
# in-process twins that CI records via scripts/bench.sh; this script is
# for poking a live server.
#
# Usage:
#   scripts/loadgen.sh [-a host:port] [-m model] [-n requests] [-c clients] [-d dim]
#                      [-p rate] [-B mean_burst] [-s seed]
#
#   scripts/loadgen.sh -a localhost:8080 -m zoo-ridge -n 500 -c 8 -d 8
#   SERVE_URL=http://router:9090 scripts/loadgen.sh -m zoo-ridge
#
# By default each client fires requests closed-loop (back to back).
# With -p RATE each client instead follows a bursty Poisson arrival
# process: exponential inter-burst gaps at RATE bursts/second, with
# geometric burst sizes of mean -B (default 4) fired back to back — the
# open-loop shape that actually stresses admission control and
# micro-batching. The schedule is drawn up front from -s SEED (default
# 1), so the same seed replays the identical arrival pattern.
#
# SERVE_URL (env) overrides -a entirely — point it at any base URL,
# including a cluster router.
set -euo pipefail

ADDR="localhost:8080"
MODEL="zoo-ridge"
REQUESTS=200
CLIENTS=8
DIM=8
RATE=0
BURST=4
SEED=1

while getopts "a:m:n:c:d:p:B:s:h" opt; do
	case "$opt" in
	a) ADDR="$OPTARG" ;;
	m) MODEL="$OPTARG" ;;
	n) REQUESTS="$OPTARG" ;;
	c) CLIENTS="$OPTARG" ;;
	d) DIM="$OPTARG" ;;
	p) RATE="$OPTARG" ;;
	B) BURST="$OPTARG" ;;
	s) SEED="$OPTARG" ;;
	h | *)
		grep '^#' "$0" | sed 's/^# \{0,1\}//'
		exit 0
		;;
	esac
done

BASE="${SERVE_URL:-http://$ADDR}"

# One instance of DIM small deterministic values.
instance="$(awk -v d="$DIM" 'BEGIN {
	printf "["
	for (i = 0; i < d; i++) printf "%s%.2f", (i ? ", " : ""), (i % 10) / 10
	printf "]"
}')"
body="{\"instances\": [$instance]}"
url="$BASE/predict/$MODEL"

curl -fsS "$BASE/readyz" >/dev/null || {
	echo "loadgen: $BASE is not ready" >&2
	exit 1
}

# schedule N RATE BURST SEED — one pre-request sleep (seconds) per line:
# exponential inter-burst gaps, zero-gap requests inside each geometric
# burst. Deterministic per seed: same seed, same arrival pattern.
schedule() {
	awk -v n="$1" -v rate="$2" -v burst="$3" -v seed="$4" 'BEGIN {
		srand(seed)
		i = 0
		while (i < n) {
			printf "%.4f\n", -log(1 - rand()) / rate
			b = 1 + int(-log(1 - rand()) * (burst - 1))
			for (j = 1; j < b && i + j < n; j++) printf "0\n"
			i += b
		}
	}'
}

# Each worker runs at one priority tier and reports "fails sheds" —
# hard failures vs 429s its tier absorbed. With a Poisson schedule the
# worker sleeps out its pre-drawn gaps; otherwise it runs closed-loop.
worker() {
	local n=$1 prio=$2 wseed=$3 fails=0 sheds=0 gap sched
	sched="$(mktemp)"
	if [ "$(awk -v r="$RATE" 'BEGIN { print (r > 0) }')" = 1 ]; then
		schedule "$n" "$RATE" "$BURST" "$wseed" >"$sched"
	else
		seq 1 "$n" | sed 's/.*/0/' >"$sched"
	fi
	while read -r gap; do
		[ "$gap" = 0 ] || sleep "$gap"
		code="$(curl -s -o /dev/null -w '%{http_code}' \
			-X POST "$url" -H 'Content-Type: application/json' \
			-H "X-Priority: $prio" -d "$body")"
		case "$code" in
		200) ;;
		429) sheds=$((sheds + 1)) ;;
		*) fails=$((fails + 1)) ;;
		esac
	done <"$sched"
	rm -f "$sched"
	echo "$fails $sheds"
}

PRIORITIES=(low normal high)
per_client=$((REQUESTS / CLIENTS))
[ "$per_client" -ge 1 ] || per_client=1
total=$((per_client * CLIENTS))

if [ "$(awk -v r="$RATE" 'BEGIN { print (r > 0) }')" = 1 ]; then
	echo "loadgen: $total requests -> $url ($CLIENTS clients x $per_client, bursty Poisson: $RATE bursts/s, mean burst $BURST, seed $SEED)"
else
	echo "loadgen: $total requests -> $url ($CLIENTS clients x $per_client, closed-loop, priorities cycled low/normal/high)"
fi
start=$(date +%s.%N)
fail_files=()
prio_of=()
for c in $(seq 1 "$CLIENTS"); do
	f="$(mktemp)"
	fail_files+=("$f")
	prio="${PRIORITIES[$(((c - 1) % 3))]}"
	prio_of+=("$prio")
	worker "$per_client" "$prio" "$((SEED + c))" >"$f" &
done
wait
end=$(date +%s.%N)

fails=0
declare -A sent shed
for p in "${PRIORITIES[@]}"; do
	sent[$p]=0
	shed[$p]=0
done
for i in "${!fail_files[@]}"; do
	f="${fail_files[$i]}"
	p="${prio_of[$i]}"
	read -r wfails wsheds <"$f"
	fails=$((fails + wfails))
	sent[$p]=$((sent[$p] + per_client))
	shed[$p]=$((shed[$p] + wsheds))
	rm -f "$f"
done

total_shed=0
for p in "${PRIORITIES[@]}"; do
	total_shed=$((total_shed + shed[$p]))
done
awk -v t="$total" -v s="$start" -v e="$end" -v f="$fails" -v sh="$total_shed" 'BEGIN {
	el = e - s
	printf "loadgen: %d ok, %d shed (429), %d failed in %.2fs (%.0f req/s)\n", t - f - sh, sh, f, el, t / el
}'
echo "per-priority shed rates (caller side):"
for p in "${PRIORITIES[@]}"; do
	awk -v p="$p" -v n="${sent[$p]}" -v sh="${shed[$p]}" 'BEGIN {
		printf "  %-6s %5d sent, %5d shed (%.1f%%)\n", p, n, sh, n ? 100 * sh / n : 0
	}'
done
echo "server metrics:"
curl -fsS "$BASE/metrics" |
	python3 -c "
import json, sys
m = {x['name']: x for x in json.load(sys.stdin)}
for name in ('serve.batches', 'serve.instances_scored', 'serve.throttled_429',
             'serve.shed.low', 'serve.shed.normal', 'serve.shed.high',
             'serve.kernel_row_cache_hits', 'serve.kernel_row_cache_misses',
             'cluster.requests_routed', 'cluster.throttled_429',
             'cluster.shed.low', 'cluster.shed.normal', 'cluster.shed.high',
             'cluster.fanouts', 'cluster.failovers'):
    if name in m:
        print(f'  {name}: {m[name].get(\"value\", 0)}')"

[ "$fails" -eq 0 ]
