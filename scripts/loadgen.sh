#!/usr/bin/env bash
# Ad-hoc load generator for a running edaserved: fire N single-instance
# predict requests from C concurrent curl clients and report wall time,
# throughput, and the server's own batching metrics from /metrics.
# BenchmarkServeThroughput (internal/serve/bench_test.go) is the
# in-process twin that CI records via scripts/bench.sh; this script is
# for poking a live server.
#
# Usage:
#   scripts/loadgen.sh [-a host:port] [-m model] [-n requests] [-c clients] [-d dim]
#
#   scripts/loadgen.sh -a localhost:8080 -m zoo-ridge -n 500 -c 8 -d 8
set -euo pipefail

ADDR="localhost:8080"
MODEL="zoo-ridge"
REQUESTS=200
CLIENTS=8
DIM=8

while getopts "a:m:n:c:d:h" opt; do
	case "$opt" in
	a) ADDR="$OPTARG" ;;
	m) MODEL="$OPTARG" ;;
	n) REQUESTS="$OPTARG" ;;
	c) CLIENTS="$OPTARG" ;;
	d) DIM="$OPTARG" ;;
	h | *)
		grep '^#' "$0" | sed 's/^# \{0,1\}//'
		exit 0
		;;
	esac
done

# One instance of DIM small deterministic values.
instance="$(awk -v d="$DIM" 'BEGIN {
	printf "["
	for (i = 0; i < d; i++) printf "%s%.2f", (i ? ", " : ""), (i % 10) / 10
	printf "]"
}')"
body="{\"instances\": [$instance]}"
url="http://$ADDR/predict/$MODEL"

curl -fsS "http://$ADDR/readyz" >/dev/null || {
	echo "loadgen: $ADDR is not ready" >&2
	exit 1
}

worker() {
	local n=$1 fails=0
	for _ in $(seq 1 "$n"); do
		code="$(curl -s -o /dev/null -w '%{http_code}' \
			-X POST "$url" -H 'Content-Type: application/json' -d "$body")"
		[ "$code" = "200" ] || fails=$((fails + 1))
	done
	echo "$fails"
}

per_client=$((REQUESTS / CLIENTS))
[ "$per_client" -ge 1 ] || per_client=1
total=$((per_client * CLIENTS))

echo "loadgen: $total requests -> $url ($CLIENTS clients x $per_client)"
start=$(date +%s.%N)
fail_files=()
for c in $(seq 1 "$CLIENTS"); do
	f="$(mktemp)"
	fail_files+=("$f")
	worker "$per_client" >"$f" &
done
wait
end=$(date +%s.%N)

fails=0
for f in "${fail_files[@]}"; do
	fails=$((fails + $(cat "$f")))
	rm -f "$f"
done

awk -v t="$total" -v s="$start" -v e="$end" -v f="$fails" 'BEGIN {
	el = e - s
	printf "loadgen: %d ok, %d failed in %.2fs (%.0f req/s)\n", t - f, f, el, t / el
}'
echo "server metrics:"
curl -fsS "http://$ADDR/metrics" |
	python3 -c "
import json, sys
m = {x['name']: x for x in json.load(sys.stdin)}
for name in ('serve.batches', 'serve.instances_scored', 'serve.throttled_429',
             'serve.kernel_row_cache_hits', 'serve.kernel_row_cache_misses'):
    if name in m:
        print(f'  {name}: {m[name].get(\"value\", 0)}')"

[ "$fails" -eq 0 ]
