#!/usr/bin/env bash
# Benchmark-dataset export smoke test: the bit-reproducibility contract
# end to end, against the real binary.
#
#   1. build cmd/edamine and export every dataset at the fixed seed
#      (quick scale — same scale the committed goldens use)
#   2. assert each artifact's payload_sha256 against the committed
#      expectations in scripts/datasets_checksums.txt
#   3. re-export into a second directory and require byte-identical
#      artifacts (the envelope carries no timestamps or build revision,
#      so bytes are a pure function of seed + config + code)
#   4. require each dataset card to carry the seed and the exact
#      repro command
#
# CI runs this as the `datasets-smoke` job and uploads the artifacts.
# After an intentional format or generator change, regenerate the
# expectations:
#
#   go run ./cmd/edamine -seed 42 -quick datasets -out /tmp/ds &&
#     grep -h payload_sha256 /tmp/ds/*.json  # paste into datasets_checksums.txt
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
SEED="${DATASETS_SEED:-42}"
OUT="${DATASETS_OUT:-.datasets-smoke}"
EXPECT="scripts/datasets_checksums.txt"

rm -rf "$OUT"
mkdir -p "$OUT"

echo "== export (seed $SEED, quick) =="
"$GO" run ./cmd/edamine -seed "$SEED" -quick datasets -out "$OUT/a" | tee "$OUT/export.log"

echo
echo "== checksums vs $EXPECT =="
fail=0
while read -r name want; do
	[ -z "$name" ] && continue
	case "$name" in \#*) continue ;; esac
	got="$(sed -n 's/.*"payload_sha256": "\([0-9a-f]*\)".*/\1/p' "$OUT/a/$name.json")"
	if [ "$got" != "$want" ]; then
		echo "FAIL: $name payload_sha256 = $got, committed expectation $want" >&2
		fail=1
	else
		echo "ok: $name $got"
	fi
done <"$EXPECT"
[ "$fail" -eq 0 ] || exit 1

echo
echo "== re-export must be byte-identical =="
"$GO" run ./cmd/edamine -seed "$SEED" -quick datasets -out "$OUT/b" >/dev/null
for f in "$OUT"/a/*.json; do
	cmp "$f" "$OUT/b/$(basename "$f")" || {
		echo "FAIL: re-export of $(basename "$f") differs" >&2
		exit 1
	}
done
echo "ok: all artifacts byte-identical across exports"

echo
echo "== cards carry seed + repro command =="
for card in "$OUT"/a/*.card.md; do
	name="$(basename "$card" .card.md)"
	grep -q "generation seed: $SEED" "$card" || {
		echo "FAIL: $name card does not state the seed" >&2
		exit 1
	}
	grep -q -- "edamine -seed $SEED.*datasets.*-only $name" "$card" || {
		echo "FAIL: $name card does not carry the repro command" >&2
		exit 1
	}
	echo "ok: $name card"
done

echo
echo "datasets-smoke: OK"
