#!/usr/bin/env bash
# Per-package coverage report plus a ratcheted total-coverage gate.
#
# Runs the full suite once with a combined coverage profile, prints
# statement coverage per package, and fails if total coverage drops
# below the floor recorded in scripts/cover_floor.txt. The floor only
# ratchets up: when the suite comfortably clears it (>= floor + 2pts),
# the script says so — raise the floor in the same PR that added the
# coverage.
set -euo pipefail
cd "$(dirname "$0")/.."

# The profile lands in a git-ignored directory so a coverage run never
# leaves an untracked cover.out at the repo root (or worse, commits it).
profile="${COVER_PROFILE:-.cover/cover.out}"
floor_file="scripts/cover_floor.txt"
mkdir -p "$(dirname "$profile")"

echo "== coverage run =="
go test -count=1 -coverprofile="$profile" ./... | grep -v '^---' | sed 's/^ok  */ok  /'

echo
echo "== per-package statement coverage =="
go tool cover -func="$profile" |
    awk -F'[:\t]' '
        $1 ~ /\.go$/ {
            n = split($1, parts, "/")
            pkg = ""
            for (i = 1; i < n; i++) pkg = pkg (i > 1 ? "/" : "") parts[i]
            pct = $NF; sub(/%/, "", pct)
            sum[pkg] += pct; cnt[pkg]++
        }
        END { for (p in sum) printf "%-40s %6.1f%%\n", p, sum[p] / cnt[p] }
    ' | sort

total="$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
floor="$(cat "$floor_file")"
echo
echo "total statement coverage: ${total}%  (floor: ${floor}%)"

awk -v total="$total" -v floor="$floor" 'BEGIN {
    if (total + 0 < floor + 0) {
        printf "FAIL: total coverage %.1f%% is below the ratcheted floor %.1f%%\n", total, floor
        exit 1
    }
    if (total + 0 >= floor + 2) {
        printf "note: coverage clears the floor by %.1f pts - consider ratcheting %s up\n", total - floor, "scripts/cover_floor.txt"
    }
}'
