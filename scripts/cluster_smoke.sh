#!/usr/bin/env bash
# Cluster smoke test: the sharded serving tier against real binaries.
#
#   1. build cmd/edamine, cmd/edaserved, and cmd/edarouter
#   2. train + save artifacts (`edamine -quick -save-model`)
#   3. boot a 3-replica edaserved fleet and an edarouter fronting it
#   4. require 200 from the router's /readyz and a routed /predict
#   5. kill one replica outright — predictions must keep answering 200
#      through health-gated failover
#   6. blue/green rollout: POST /models/load on the router while a
#      client hammers /predict — zero requests may fail during the roll
#   7. SIGTERM the router and require a graceful drain (exit 0)
#
# CI runs this as the `cluster-smoke` job; `make cluster-smoke` runs it
# locally. Set GO to use a specific toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
BASE_PORT="${CLUSTER_SMOKE_PORT:-18180}"
ROUTER_ADDR="127.0.0.1:$((BASE_PORT + 3))"
ROUTER_URL="http://$ROUTER_ADDR"
WORK="$(mktemp -d)"
PIDS=()
ROUTER_PID=""

cleanup() {
	if [ -n "$ROUTER_PID" ] && kill -0 "$ROUTER_PID" 2>/dev/null; then
		kill -9 "$ROUTER_PID" 2>/dev/null || true
	fi
	for pid in "${PIDS[@]}"; do
		kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build =="
"$GO" build -o "$WORK/edamine" ./cmd/edamine
"$GO" build -o "$WORK/edaserved" ./cmd/edaserved
"$GO" build -o "$WORK/edarouter" ./cmd/edarouter
"$WORK/edarouter" -version

echo "== train + save artifacts =="
"$WORK/edamine" -quick -save-model "$WORK" models
ls "$WORK"/*.model.json >/dev/null

echo "== boot 3-replica fleet =="
REPLICA_FLAGS=()
for i in 0 1 2; do
	port=$((BASE_PORT + i))
	"$WORK/edaserved" -addr "127.0.0.1:$port" -model-dir "$WORK" -drain-timeout 5s \
		>"$WORK/replica$i.log" 2>&1 &
	PIDS+=($!)
	disown $! # silence job-control noise when the kill step reaps it
	REPLICA_FLAGS+=(-replica "http://127.0.0.1:$port")
done

echo "== boot router =="
"$WORK/edarouter" -addr "$ROUTER_ADDR" "${REPLICA_FLAGS[@]}" \
	-replication 2 -probe-interval 200ms -drain-timeout 5s \
	>"$WORK/router.log" 2>&1 &
ROUTER_PID=$!

ready=""
for _ in $(seq 1 50); do
	if curl -fsS "$ROUTER_URL/readyz" >/dev/null 2>&1; then
		ready=1
		break
	fi
	if ! kill -0 "$ROUTER_PID" 2>/dev/null; then
		echo "cluster_smoke: router died during startup" >&2
		cat "$WORK/router.log" >&2
		exit 1
	fi
	sleep 0.1
done
if [ -z "$ready" ]; then
	echo "cluster_smoke: router never became ready" >&2
	cat "$WORK/router.log" "$WORK"/replica*.log >&2
	exit 1
fi
echo "readyz: $(curl -fsS "$ROUTER_URL/readyz" | head -c 200)"

BODY='{"instances": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]]}'
predict() {
	curl -s -o "$1" -w '%{http_code}' \
		-X POST "$ROUTER_URL/predict/zoo-ridge" \
		-H 'Content-Type: application/json' -d "$BODY"
}

echo "== routed predict =="
status="$(predict "$WORK/predict.json")"
if [ "$status" != "200" ]; then
	echo "cluster_smoke: routed predict returned HTTP $status" >&2
	cat "$WORK/predict.json" "$WORK/router.log" >&2
	exit 1
fi
grep -q '"predictions"' "$WORK/predict.json"
echo "predict: $(cat "$WORK/predict.json")"

echo "== kill replica 0: traffic must keep flowing =="
kill -9 "${PIDS[0]}"
fails=0
for i in $(seq 1 20); do
	status="$(predict "$WORK/predict_kill_$i.json")"
	[ "$status" = "200" ] || fails=$((fails + 1))
done
if [ "$fails" != "0" ]; then
	echo "cluster_smoke: $fails/20 predicts failed after replica kill" >&2
	cat "$WORK/router.log" >&2
	exit 1
fi
echo "replica killed: 20/20 predicts answered 200"

echo "== blue/green rollout under live traffic =="
ARTIFACT="$(ls "$WORK"/*ridge*.model.json | head -1)"
if [ -z "$ARTIFACT" ]; then
	ARTIFACT="$(ls "$WORK"/*.model.json | head -1)"
fi
# Hammer predicts in the background while the rollout walks the owners.
: >"$WORK/roll_fails"
(
	rf=0
	for _ in $(seq 1 60); do
		code="$(curl -s -o /dev/null -w '%{http_code}' \
			-X POST "$ROUTER_URL/predict/zoo-ridge" \
			-H 'Content-Type: application/json' -d "$BODY")"
		[ "$code" = "200" ] || rf=$((rf + 1))
	done
	echo "$rf" >"$WORK/roll_fails"
) &
TRAFFIC_PID=$!
sleep 0.2
roll_status="$(curl -s -o "$WORK/rollout.json" -w '%{http_code}' \
	-X POST "$ROUTER_URL/models/load" \
	-H 'Content-Type: application/json' \
	-d "{\"path\": \"$ARTIFACT\", \"name\": \"zoo-ridge\"}")"
wait "$TRAFFIC_PID"
roll_fails="$(cat "$WORK/roll_fails")"
if [ "$roll_status" != "200" ]; then
	echo "cluster_smoke: rollout returned HTTP $roll_status" >&2
	cat "$WORK/rollout.json" "$WORK/router.log" >&2
	exit 1
fi
if [ "$roll_fails" != "0" ]; then
	echo "cluster_smoke: $roll_fails/60 predicts failed during rollout (want 0)" >&2
	cat "$WORK/router.log" >&2
	exit 1
fi
echo "rollout: $(cat "$WORK/rollout.json" | head -c 200)"
echo "rollout under traffic: 60/60 predicts answered 200"

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$ROUTER_PID"
exit_code=0
wait "$ROUTER_PID" || exit_code=$?
ROUTER_PID=""
if [ "$exit_code" != "0" ]; then
	echo "cluster_smoke: router exited $exit_code on SIGTERM (want 0)" >&2
	cat "$WORK/router.log" >&2
	exit 1
fi
grep -q "drained, exiting" "$WORK/router.log"

echo "cluster_smoke: OK"
