#!/usr/bin/env bash
# Benchmark ratchet: compare a fresh bench run against the committed
# BENCH_baseline.json and WARN on per-benchmark ns/op regressions beyond
# RATCHET_THRESHOLD (default 1.5x). Like the coverage floor this is a
# trend guard, not a gate — CI machines are too noisy to fail a build on
# a timing — so the script always exits 0 unless the inputs are missing
# or malformed. The comparison table is written to BENCH_ratchet.txt for
# upload as a CI artifact.
#
# Usage: scripts/bench_ratchet.sh [current.json]
#   current.json defaults to BENCH_ci.json (run scripts/bench.sh first).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${RATCHET_BASELINE:-BENCH_baseline.json}"
CURRENT="${1:-BENCH_ci.json}"
THRESHOLD="${RATCHET_THRESHOLD:-1.5}"
OUT="${RATCHET_OUT:-BENCH_ratchet.txt}"

for f in "$BASELINE" "$CURRENT"; do
	if [[ ! -f "$f" ]]; then
		echo "bench_ratchet: missing $f (run scripts/bench.sh first)" >&2
		exit 1
	fi
done

# Both files are the flat JSON arrays scripts/bench.sh emits: one object
# per line with "name", "ns_per_op", and "allocs_per_op" fields, which
# awk can pair up without a JSON parser. Two ratchets per benchmark:
# ns/op beyond THRESHOLD x baseline warns, and allocs/op above the
# baseline warns. A zero-alloc baseline is strict — an allocation
# creeping into a path the columnar core keeps at zero is a structural
# regression, not machine noise. Nonzero baselines get max(1, 2%) slack:
# the concurrent throughput benchmarks jitter by a few allocs with
# goroutine scheduling, and the zero-floor paths are gated hard by
# TestAllocFloor anyway.
awk -v threshold="$THRESHOLD" '
function field(line, key,    re, s) {
	re = "\"" key "\": *[^,}]*"
	if (match(line, re) == 0) return ""
	s = substr(line, RSTART, RLENGTH)
	sub(/^[^:]*: */, "", s)
	gsub(/[" ]/, "", s)
	return s
}
FNR == NR {
	name = field($0, "name")
	if (name != "") {
		base[name] = field($0, "ns_per_op")
		baseAllocs[name] = field($0, "allocs_per_op")
	}
	next
}
{
	name = field($0, "name")
	if (name == "") next
	cur[name] = field($0, "ns_per_op")
	curAllocs[name] = field($0, "allocs_per_op")
	order[++n] = name
}
END {
	printf "%-70s %14s %14s %8s %12s\n", "benchmark", "baseline_ns", "current_ns", "ratio", "allocs"
	worst = 0; regressions = 0; missing = 0; allocRegressions = 0
	for (i = 1; i <= n; i++) {
		name = order[i]
		if (!(name in base)) { missing++; continue }
		if (base[name] + 0 <= 0) continue
		r = cur[name] / base[name]
		flag = ""
		if (r > threshold) { flag = "  <-- REGRESSION"; regressions++ }
		if (r > worst) worst = r
		allocCol = ""
		if (baseAllocs[name] != "" && baseAllocs[name] != "null" && \
		    curAllocs[name] != "" && curAllocs[name] != "null") {
			allocCol = sprintf("%s->%s", baseAllocs[name], curAllocs[name])
			ba = baseAllocs[name] + 0
			slack = (ba == 0) ? 0 : (ba * 0.02 > 1 ? ba * 0.02 : 1)
			if (curAllocs[name] + 0 > ba + slack) {
				flag = flag "  <-- ALLOCS UP"
				allocRegressions++
			}
		}
		printf "%-70s %14d %14d %7.2fx %12s%s\n", name, base[name], cur[name], r, allocCol, flag
	}
	printf "\n"
	if (missing) printf "%d benchmarks have no baseline entry (new since BENCH_baseline.json)\n", missing
	if (regressions) {
		printf "WARNING: %d benchmarks regressed beyond %.2fx the baseline (worst %.2fx)\n", regressions, threshold, worst
		printf "If intentional, refresh the baseline: BENCH_OUT=BENCH_baseline.json scripts/bench.sh\n"
	} else {
		printf "no benchmark regressed beyond %.2fx the baseline (worst %.2fx)\n", threshold, worst
	}
	if (allocRegressions) {
		printf "WARNING: %d benchmarks allocate more per op than the baseline\n", allocRegressions
		printf "Zero-alloc paths are additionally gated hard by TestAllocFloor (scripts/alloc_floor.txt)\n"
	} else {
		printf "no benchmark allocates more per op than the baseline\n"
	}
}
' "$BASELINE" "$CURRENT" | tee "$OUT"

# Router overhead guard: within the CURRENT run (same machine, same
# noise), the cluster router at 1 replica should cost no more than
# ROUTER_OVERHEAD_THRESHOLD x the direct single-node serve path at the
# same client count — the router adds admission, ring lookup, and one
# proxy hop, not a second serving stack. Warn-only, like the ratchet.
ROUTER_THRESHOLD="${ROUTER_OVERHEAD_THRESHOLD:-1.5}"
awk -v threshold="$ROUTER_THRESHOLD" '
function field(line, key,    re, s) {
	re = "\"" key "\": *[^,}]*"
	if (match(line, re) == 0) return ""
	s = substr(line, RSTART, RLENGTH)
	sub(/^[^:]*: */, "", s)
	gsub(/[" ]/, "", s)
	return s
}
{
	name = field($0, "name")
	if (name == "") next
	ns[name] = field($0, "ns_per_op")
}
END {
	printf "\n%-12s %16s %16s %8s\n", "clients", "direct_ns", "via_router_ns", "ratio"
	warned = 0; compared = 0
	for (c = 1; c <= 64; c *= 8) {
		direct = "BenchmarkServeThroughput/clients=" c
		routed = "BenchmarkClusterThroughput/replicas=1/clients=" c
		if (!(direct in ns) || !(routed in ns) || ns[direct] + 0 <= 0) continue
		compared++
		r = ns[routed] / ns[direct]
		flag = ""
		if (r > threshold) { flag = "  <-- ROUTER OVERHEAD"; warned++ }
		printf "%-12d %16d %16d %7.2fx%s\n", c, ns[direct], ns[routed], r, flag
	}
	if (!compared) printf "router overhead: no paired serve/cluster entries in this run\n"
	else if (warned) printf "WARNING: router overhead beyond %.2fx the direct path at %d client count(s)\n", threshold, warned
	else printf "router overhead within %.2fx of the direct path at all client counts\n", threshold
}
' "$CURRENT" | tee -a "$OUT"

# Incremental-refresh guard: within the CURRENT run, the streaming
# trainer's warm refresh (rank-1 Gram maintenance + warm-started solve)
# must beat a cold retrain (full Gram rebuild + cold solve) on the same
# window — that speedup is the whole point of internal/stream's
# incremental path. Warn-only, like the ratchet, but a ratio >= 1.0
# means the tentpole economics are gone and the trainer needs a look.
INCR_THRESHOLD="${INCREMENTAL_THRESHOLD:-1.0}"
awk -v threshold="$INCR_THRESHOLD" '
function field(line, key,    re, s) {
	re = "\"" key "\": *[^,}]*"
	if (match(line, re) == 0) return ""
	s = substr(line, RSTART, RLENGTH)
	sub(/^[^:]*: */, "", s)
	gsub(/[" ]/, "", s)
	return s
}
{
	name = field($0, "name")
	if (name == "") next
	ns[name] = field($0, "ns_per_op")
}
END {
	printf "\n%-12s %16s %16s %8s\n", "window", "cold_ns", "incremental_ns", "ratio"
	warned = 0; compared = 0
	for (w = 256; w <= 8192; w *= 2) {
		inc = "BenchmarkIncrementalRefresh/window=" w "/mode=incremental"
		cold = "BenchmarkIncrementalRefresh/window=" w "/mode=cold"
		if (!(inc in ns) || !(cold in ns) || ns[cold] + 0 <= 0) continue
		compared++
		r = ns[inc] / ns[cold]
		flag = ""
		if (r >= threshold) { flag = "  <-- INCREMENTAL NOT FASTER"; warned++ }
		printf "%-12d %16d %16d %7.2fx%s\n", w, ns[cold], ns[inc], r, flag
	}
	if (!compared) printf "incremental refresh: no paired incremental/cold entries in this run\n"
	else if (warned) printf "WARNING: incremental refresh not beating cold retrain at %d window size(s)\n", warned
	else printf "incremental refresh beats cold retrain at every measured window size\n"
}
' "$CURRENT" | tee -a "$OUT"

echo "bench_ratchet: wrote $OUT"
