#!/usr/bin/env bash
# Bounded fuzz sweep over the untrusted-input decoders: model artifact
# decoding (internal/model.FuzzModelDecode), the predict request handler
# (internal/serve.FuzzPredictHandler), and benchmark-dataset artifact
# decoding (internal/datasets.FuzzDatasetDecode). Each
# target runs for FUZZTIME (default 30s) from its committed seed corpus;
# any crasher Go writes to testdata/fuzz/ fails the run and should be
# committed as a regression input once fixed.
#
# -fuzzminimizetime bounds the per-input corpus-minimization pass, which
# otherwise gets a 60s budget every time the fuzzer finds interesting
# coverage and makes short CI runs look stalled at 0 execs/sec.
#
# Set GO to use a specific toolchain, e.g. `GO=go1.22.12 ./scripts/fuzz.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
FUZZTIME="${FUZZTIME:-30s}"

targets=(
	"repro/internal/model FuzzModelDecode"
	"repro/internal/serve FuzzPredictHandler"
	"repro/internal/datasets FuzzDatasetDecode"
)

for t in "${targets[@]}"; do
	read -r pkg name <<<"$t"
	echo "== fuzz $pkg $name ($FUZZTIME) =="
	"$GO" test "$pkg" -run '^$' -fuzz "^${name}\$" \
		-fuzztime "$FUZZTIME" -fuzzminimizetime 5s
done

echo "fuzz: OK"
