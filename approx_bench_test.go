package repro_test

// Exact-vs-compiled predict benchmarks (ISSUE 6 tentpole). The serve
// path's single-row cost for a kernel model is the kernel expansion
// against every support vector / training row — O(n·d) with n kernel
// evaluations for SVC, plus an O(n²) triangular solve for the GP
// (Predict goes through PredictVar). Compiling through
// internal/kernel/approx collapses that to one D-dimensional feature
// map and a dot product. These benchmarks measure both sides at the
// scale the paper's deployment story needs (thousands of retained
// rows), so BENCH_baseline.json records the speedup the approx-linear
// payload exists to deliver: ≥10× for SVC and GP at RFF D=512 or
// Nyström m=128.
//
// The models are Restore-constructed synthetics (no training in the
// timed loop) with N(0,1) support vectors and duals — the kernel
// expansion's cost depends only on n and d, not on the values.

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/svm"
)

// benchDim is the feature dimensionality of the synthetic models.
const benchDim = 16

// benchModels builds the exact SVC and GP the benchmarks score, sized
// by -short: n retained rows each, standard-normal basis and duals.
func benchModels(n int) (*svm.SVC, *gp.Regressor) {
	r := rand.New(rand.NewSource(82))
	basis := linalg.NewMatrix(n, benchDim)
	for i := range basis.Data {
		basis.Data[i] = r.NormFloat64()
	}
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = r.NormFloat64()
	}
	k := kernel.RBF{Gamma: 1.0 / benchDim}
	svc := svm.RestoreSVC(k, basis, alpha, 0.25, [2]float64{-1, 1})
	// Identity Cholesky factor: PredictVar's O(n²) forward substitution
	// costs the same regardless of the factor's values.
	chol := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		chol.Set(i, i, 1)
	}
	g := gp.Restore(k, basis, alpha, chol, 0.1, 1e-2)
	return svc, g
}

// benchProbes returns rows drawn from the same distribution as the
// basis, cycled through by the timed loops.
func benchProbes(n int) *linalg.Matrix {
	r := rand.New(rand.NewSource(83))
	x := linalg.NewMatrix(n, benchDim)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	return x
}

// TestApproxTradeoffCurve regenerates the accuracy-vs-speedup table in
// EXPERIMENTS.md ("Approximate scoring"): for each feature-map size it
// compiles the benchmark models (2048 retained rows, d=16) and reports
// the worst |approx − exact| decision gap over the probe set next to
// the measured single-row speedup. Gated behind REPRO_CURVE=1 — it
// times ~25 configurations with testing.Benchmark, which is minutes of
// wall clock, not unit-test material.
func TestApproxTradeoffCurve(t *testing.T) {
	if os.Getenv("REPRO_CURVE") == "" {
		t.Skip("set REPRO_CURVE=1 to regenerate the EXPERIMENTS.md tradeoff curve")
	}
	const n = 2048
	svc, g := benchModels(n)
	probes := benchProbes(64)

	perRow := func(score func([]float64) float64) float64 {
		_ = score(probes.Row(0)) // warm lazy state (Nyström fold)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = score(probes.Row(i % probes.Rows))
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	curve := func(name string, exact func([]float64) float64, m any, specs []model.ApproxSpec) {
		base := perRow(exact)
		t.Logf("%s exact: %.0f ns/row (n=%d, d=%d)", name, base, n, benchDim)
		for _, spec := range specs {
			am, err := model.CompileApprox(m, spec)
			if err != nil {
				t.Fatalf("%s %s: %v", name, spec, err)
			}
			worst := 0.0
			for i := 0; i < probes.Rows; i++ {
				x := probes.Row(i)
				if e := math.Abs(am.Decision(x) - exact(x)); e > worst {
					worst = e
				}
			}
			ns := perRow(am.ScoreRow)
			t.Logf("%s %-12s max|err| %.4f  %8.0f ns/row  %6.1fx", name, spec, worst, ns, base/ns)
		}
	}

	var rffs, nys []model.ApproxSpec
	for _, d := range []int{64, 128, 256, 512, 1024, 2048} {
		rffs = append(rffs, model.ApproxSpec{Method: model.ApproxRFF, Dim: d, Seed: 84})
	}
	for _, m := range []int{16, 32, 64, 128, 256, 512} {
		nys = append(nys, model.ApproxSpec{Method: model.ApproxNystrom, Dim: m, Seed: 84})
	}
	curve("svc", svc.Decision, svc, append(append([]model.ApproxSpec{}, rffs...), nys...))
	curve("gp", g.Predict, g, append(append([]model.ApproxSpec{}, rffs...), nys...))
}

// BenchmarkPredictExactVsApprox is the tentpole's acceptance benchmark:
// single-row predict throughput of the exact kernel models versus their
// compiled approx-linear forms at RFF D=512 and Nyström m=128. Compare
// the <kind>/exact sub-benchmark against the same kind's compiled ones;
// scripts/bench_ratchet.sh tracks all of them across commits.
func BenchmarkPredictExactVsApprox(b *testing.B) {
	n := benchScale(256, 2048)
	svc, g := benchModels(n)
	probes := benchProbes(64)

	compile := func(m any, spec model.ApproxSpec) *model.ApproxModel {
		am, err := model.CompileApprox(m, spec)
		if err != nil {
			b.Fatal(err)
		}
		return am
	}
	rff := model.ApproxSpec{Method: model.ApproxRFF, Dim: 512, Seed: 84}
	nys := model.ApproxSpec{Method: model.ApproxNystrom, Dim: 128, Seed: 84}

	for _, tc := range []struct {
		name  string
		score func([]float64) float64
	}{
		{"svc/exact", svc.Predict},
		{"svc/rff512", compile(svc, rff).ScoreRow},
		{"svc/nystrom128", compile(svc, nys).ScoreRow},
		{"gp/exact", g.Predict},
		{"gp/rff512", compile(g, rff).ScoreRow},
		{"gp/nystrom128", compile(g, nys).ScoreRow},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportMetric(float64(n), "basis_rows")
			// Warm one-time lazy state (the Nyström weight fold) so the
			// 1x CI runs time the steady-state path.
			_ = tc.score(probes.Row(0))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tc.score(probes.Row(i % probes.Rows))
			}
		})
	}
}
