package repro_test

// Cluster conformance lane (ISSUE 7): every persisted model kind,
// scored through a real 3-node cluster — three serve.Servers on
// loopback listeners behind the consistent-hash router — must be
// bit-identical to single-node per-row scoring. Replication 3 and a
// tiny SpreadMin force genuine cross-node fan-out and merge, so this
// pins the router's split/merge arithmetic, not just its plumbing.

import (
	"testing"

	"repro/internal/apps/modelzoo"
	"repro/internal/testkit"
)

func TestClusterConformanceAllKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e skipped in -short")
	}
	trained, err := modelzoo.TrainAll(13, 48, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(trained) != 6 {
		t.Fatalf("model zoo trained %d kinds, want 6", len(trained))
	}
	for _, tr := range trained {
		tr := tr
		t.Run(string(tr.Kind), func(t *testing.T) {
			t.Parallel()
			if err := testkit.DiffPathsCluster(tr.Model, tr.Probes); err != nil {
				t.Errorf("%s: %v", tr.Kind, err)
			}
		})
	}
}
