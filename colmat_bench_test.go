package repro_test

// Benchmarks for the columnar zero-alloc core (ISSUE 9): the allocating
// numeric paths vs their destination-passing twins backed by the
// internal/core/colmat arena. These are the entries the alloc gate
// (alloc_test.go) floors at zero allocs/op; the benchmarks record the
// ns/op and allocs/op win in BENCH_baseline.json so bench_ratchet.sh
// catches both a timing and an allocation regression.
//
// Full-size Gram is 2048x16 (the EXPERIMENTS.md headline number);
// -short drops to 256x16 so the CI bench sweep stays cheap.

import (
	"math/rand"
	"testing"

	"repro/internal/core/colmat"
	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/svm"
	"repro/internal/testkit"
)

// benchMatrix draws an n x dim design matrix from a fixed seed.
func benchMatrix(n, dim int) *dataset.Dataset {
	r := rand.New(rand.NewSource(991))
	return testkit.GenClassification(r, n, dim, 2.0)
}

func BenchmarkGramColumnar(b *testing.B) {
	// GenClassification emits n rows per class; halve the request so the
	// Gram is exactly benchScale(256, 2048) square.
	n := benchScale(256, 2048)
	d := benchMatrix(n/2, 16)
	n = d.X.Rows
	var k kernel.Kernel = kernel.RBF{Gamma: 0.5}

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := kernel.Gram(k, d.X)
			sinkF = g.At(0, 0)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := colmat.Get(n, n)
			kernel.GramInto(k, d.X, g)
			sinkF = g.At(0, 0)
			colmat.Put(g)
		}
	})
}

func BenchmarkScoreBatchColumnar(b *testing.B) {
	d := benchMatrix(benchScale(128, 512), 16)
	probes := benchMatrix(benchScale(64, 256), 16)
	var k kernel.Kernel = kernel.RBF{Gamma: 0.5}
	oc, err := svm.FitOneClass(d.X, k, svm.OneClassConfig{Nu: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, probes.X.Rows)

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scores := oc.DecisionBatch(probes.X)
			sinkF = scores[0]
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oc.DecisionBatchInto(probes.X, out)
			sinkF = out[0]
		}
	})
}

// sinkF defeats dead-code elimination of the benchmarked results.
var sinkF float64
