//go:build slowconformance

package repro_test

// Long-run conformance scale, selected with -tags=slowconformance (the
// CI nightly-style job). Same seeds, same generators — just a deeper
// sweep of the identical contracts, so any failure it finds is
// reproducible at default scale with the printed replay line.

const (
	sweepScale = 8
	diffCases  = 250
)
