package repro_test

// Integration tests: every public experiment entry point runs end to end
// at reduced scale and exhibits its paper shape. These complement the
// fine-grained shape tests inside each internal/apps package.

import (
	"testing"

	"repro"
	"repro/internal/apps/costred"
	"repro/internal/apps/dstc"
	"repro/internal/apps/returns"
	"repro/internal/apps/template"
	"repro/internal/apps/testsel"
	"repro/internal/apps/varpred"
)

func TestFacadeFig3(t *testing.T) {
	r, err := repro.Fig3(1, 80)
	if err != nil {
		t.Fatal(err)
	}
	if r.QuadAccuracy <= r.LinearAccuracy {
		t.Fatalf("kernel trick shape missing: quad %.3f vs linear %.3f",
			r.QuadAccuracy, r.LinearAccuracy)
	}
}

func TestFacadeFig5(t *testing.T) {
	r, err := repro.Fig5(1, 28)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Overfitting {
		t.Fatal("overfitting shape missing")
	}
}

func TestFacadeFig7(t *testing.T) {
	r, err := repro.Fig7(testsel.Config{Seed: 1, MaxTests: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r.SelectedSimulated >= r.BaselineTests {
		t.Fatalf("no saving: %d vs %d", r.SelectedSimulated, r.BaselineTests)
	}
}

func TestFacadeTable1(t *testing.T) {
	r, err := repro.Table1(template.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages[2].Covered() <= r.Stages[0].Covered() {
		t.Fatal("learning did not improve coverage")
	}
}

func TestFacadeFig9(t *testing.T) {
	r, err := repro.Fig9(varpred.Config{Seed: 1, Train: 120, Test: 120, KernelHI: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recall < 0.7 || r.Speedup < 2 {
		t.Fatalf("shape missing: recall %.2f speedup %.1f", r.Recall, r.Speedup)
	}
}

func TestFacadeFig10(t *testing.T) {
	r, err := repro.Fig10(dstc.Config{Seed: 1, Paths: 800})
	if err != nil {
		t.Fatal(err)
	}
	if !r.MechanismFound {
		t.Fatal("mechanism not rediscovered")
	}
}

func TestFacadeFig11(t *testing.T) {
	r, err := repro.Fig11(returns.Config{Seed: 1, LotSize: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Phase2.Detected == 0 {
		t.Fatal("no later returns detected")
	}
}

func TestFacadeFig12(t *testing.T) {
	r, err := repro.Fig12(costred.Config{Seed: 1, Phase1Size: 150000, Phase2Size: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.DropDecision {
		t.Fatal("mining should recommend the drop")
	}
	if r.Phase2EscapesA+r.Phase2EscapesB == 0 {
		t.Fatal("phase-2 escapes missing")
	}
	if r.Check.Suitable() {
		t.Fatal("formulation must be flagged unsuitable")
	}
}

func TestFacadeSec2(t *testing.T) {
	r, err := repro.Sec2(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scores) != 5 {
		t.Fatalf("family count %d", len(r.Scores))
	}
}
