# Developer entry points. `make check` is the pre-commit gate: gofmt, vet,
# plus the full suite under the race detector (see scripts/check.sh).
# `make ci` is everything the GitHub workflow runs, locally.

.PHONY: build test check bench smoke ci

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Serial-vs-parallel micro-benchmarks for the hot paths (Gram, matmul,
# cross-validation, substrate simulation) plus the per-figure harnesses.
bench:
	go test -bench=. -benchmem -run='^$$' ./...

# Serving lifecycle end to end: train + save artifacts, boot edaserved,
# predict over HTTP, graceful SIGTERM exit (see scripts/serve_smoke.sh).
smoke:
	./scripts/serve_smoke.sh

# The full CI pipeline locally: the race-clean correctness gate, the
# short benchmark sweep that writes BENCH_ci.json, and the serving smoke.
ci:
	./scripts/check.sh
	./scripts/bench.sh
	./scripts/serve_smoke.sh
