# Developer entry points. `make check` is the pre-commit gate: gofmt, vet,
# plus the full suite under the race detector (see scripts/check.sh).
# `make ci` is everything the GitHub workflow runs, locally.

.PHONY: build test check bench smoke fuzz ci

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Serial-vs-parallel micro-benchmarks for the hot paths (Gram, matmul,
# cross-validation, substrate simulation) plus the per-figure harnesses.
bench:
	go test -bench=. -benchmem -run='^$$' ./...

# Serving lifecycle end to end: train + save artifacts, boot edaserved,
# predict over HTTP, graceful SIGTERM exit (see scripts/serve_smoke.sh).
smoke:
	./scripts/serve_smoke.sh

# Bounded fuzz sweep over the untrusted-input decoders (artifact decode,
# predict handler); FUZZTIME=2m make fuzz for a longer run.
fuzz:
	./scripts/fuzz.sh

# The full CI pipeline locally: the race-clean correctness gate, the
# short benchmark sweep that writes BENCH_ci.json, the serving smoke,
# and the bounded fuzz sweep.
ci:
	./scripts/check.sh
	./scripts/bench.sh
	./scripts/serve_smoke.sh
	./scripts/fuzz.sh
