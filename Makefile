# Developer entry points. `make check` is the pre-commit gate: vet plus
# the full suite under the race detector (see scripts/check.sh).

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Serial-vs-parallel micro-benchmarks for the hot paths (Gram, matmul,
# cross-validation, substrate simulation) plus the per-figure harnesses.
bench:
	go test -bench=. -benchmem -run='^$$' ./...
