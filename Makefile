# Developer entry points. `make check` is the pre-commit gate: gofmt, vet,
# plus the full suite under the race detector (see scripts/check.sh).
# `make ci` is everything the GitHub workflow runs, locally.

.PHONY: build test check bench smoke cluster-smoke stream-smoke datasets-smoke fuzz cover conformance-slow ci

build:
	go build ./...

test:
	go test ./...

check:
	./scripts/check.sh

# Serial-vs-parallel micro-benchmarks for the hot paths (Gram, matmul,
# cross-validation, substrate simulation) plus the per-figure harnesses.
bench:
	go test -bench=. -benchmem -run='^$$' ./...

# Serving lifecycle end to end: train + save artifacts, boot edaserved,
# predict over HTTP, graceful SIGTERM exit (see scripts/serve_smoke.sh),
# then the same lifecycle through the sharded cluster tier and the
# streaming loop.
smoke: cluster-smoke stream-smoke
	./scripts/serve_smoke.sh

# Cluster tier end to end: 3-replica fleet behind edarouter, routed
# predictions, node kill under traffic, blue/green rollout with zero
# failed requests, graceful drain (see scripts/cluster_smoke.sh).
cluster-smoke:
	./scripts/cluster_smoke.sh

# Streaming loop end to end: edaloop against a live edaserved — planted
# drift detected, every refresh hot-swapped with zero failed requests,
# graceful SIGTERM drain (see scripts/stream_smoke.sh).
stream-smoke:
	./scripts/stream_smoke.sh

# Benchmark-dataset export end to end: fixed-seed export, payload
# checksums vs scripts/datasets_checksums.txt, byte-identical re-export,
# cards with seed + repro command (see scripts/datasets_smoke.sh).
datasets-smoke:
	./scripts/datasets_smoke.sh

# Bounded fuzz sweep over the untrusted-input decoders (artifact decode,
# predict handler, dataset decode); FUZZTIME=2m make fuzz for a longer run.
fuzz:
	./scripts/fuzz.sh

# Per-package coverage + the ratcheted total-coverage gate
# (scripts/cover_floor.txt). Fails when coverage drops below the floor.
cover:
	./scripts/cover.sh

# The deep conformance sweep: same seeds and contracts as `go test .`,
# just many more generated cases per learner (nightly-style CI job).
conformance-slow:
	go test -tags=slowconformance -run 'TestConformance' -count=1 -v .

# The full CI pipeline locally: the race-clean correctness gate, the
# short benchmark sweep that writes BENCH_ci.json, the serving smoke,
# and the bounded fuzz sweep.
ci:
	./scripts/check.sh
	./scripts/cover.sh
	./scripts/bench.sh
	./scripts/serve_smoke.sh
	./scripts/cluster_smoke.sh
	./scripts/stream_smoke.sh
	./scripts/datasets_smoke.sh
	./scripts/fuzz.sh
