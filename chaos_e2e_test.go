package repro_test

// Deterministic chaos end-to-end test (ISSUE 4): the full serving stack
// — model zoo, HTTP server with micro-batching, resilient client with
// retries — run under an active fault plan injecting 10% errors and
// 10% latency at the kernel-eval and request-decode sites.
//
// Three claims, all asserted here:
//
//  1. Resilience: every predict call eventually succeeds through the
//     client's retry machinery, and the predictions are bit-identical
//     to in-process scoring for every model kind — chaos may delay or
//     retry the answer, never change it.
//  2. Determinism: two complete runs with the same chaos seed produce
//     identical observability counter snapshots — same injected
//     errors, same retries, same batch counts, byte for byte. This is
//     what makes a chaos failure reproducible from its seed alone.
//  3. The seed matters: a different seed produces a different fault
//     sequence (otherwise "seeded" would be vacuous).
//
// Determinism holds because the harness drives requests serially with
// MaxBatch=1 (so each fault site's stream is consumed in a fixed call
// order), the comparison uses counters only (latency histograms and
// gauges measure wall time, which chaos makes noisy by design), and the
// client's breaker threshold is set high enough to never trip — the
// breaker's cooldown clock is wall time, and its determinism is pinned
// separately with a fake clock in internal/serve/client.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/modelzoo"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// chaosPlan is the fault mix of the ISSUE: 10% errors + 10% latency at
// the kernel-eval and predict-decode sites.
func chaosPlan(seed int64) fault.Plan {
	return fault.Plan{Seed: seed, Sites: map[string]fault.SiteConfig{
		fault.SiteKernelEval: {
			ErrRate: 0.10, LatencyRate: 0.10, Latency: 2 * time.Millisecond,
		},
		fault.SitePredictDecode: {
			ErrRate: 0.10, LatencyRate: 0.10, Latency: time.Millisecond,
		},
	}}
}

// runChaos executes one complete chaos run: fresh metrics, fresh
// server, fresh client, every probe of every kind driven serially
// through HTTP under the plan. It returns the predictions per kind and
// the final counter snapshot.
func runChaos(t *testing.T, trained []modelzoo.Trained, seed int64) (map[string][]float64, map[string]int64) {
	t.Helper()
	obs.ResetMetrics()
	fault.Activate(chaosPlan(seed))
	defer fault.Deactivate()

	s := serve.New(serve.Config{MaxBatch: 1, RequestTimeout: 10 * time.Second})
	for _, tr := range trained {
		a, err := model.Encode(tr.Model, model.Meta{Name: string(tr.Kind), Seed: seed})
		if err != nil {
			t.Fatalf("%s: encode: %v", tr.Kind, err)
		}
		if err := s.Load("", a); err != nil {
			t.Fatalf("%s: load: %v", tr.Kind, err)
		}
	}
	ts := httptest.NewServer(s.Handler())

	c := client.New(client.Config{
		BaseURL:     ts.URL,
		Seed:        seed,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		RetryBudget: 10_000,
		// High enough to never trip at a 10% error rate: the breaker's
		// cooldown is wall-clock and would break counter determinism.
		BreakerThreshold: 1_000,
	})

	preds := make(map[string][]float64, len(trained))
	ctx := context.Background()
	for _, tr := range trained {
		out := make([]float64, tr.Probes.Rows)
		for i := 0; i < tr.Probes.Rows; i++ {
			p, err := c.Predict(ctx, string(tr.Kind), [][]float64{tr.Probes.Row(i)})
			if err != nil {
				t.Fatalf("%s probe %d under chaos: %v", tr.Kind, i, err)
			}
			if len(p.Predictions) != 1 {
				t.Fatalf("%s probe %d: %d predictions", tr.Kind, i, len(p.Predictions))
			}
			out[i] = p.Predictions[0]
		}
		preds[string(tr.Kind)] = out
	}

	ts.Close()
	s.Close()

	counters := make(map[string]int64)
	for _, m := range obs.Snapshot() {
		if m.Kind == "counter" {
			counters[m.Name] = m.Value
		}
	}
	return preds, counters
}

func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short")
	}
	const trainSeed = 13
	trained, err := modelzoo.TrainAll(trainSeed, 48, 16)
	if err != nil {
		t.Fatal(err)
	}

	const chaosSeed = 20_240_601
	preds1, counters1 := runChaos(t, trained, chaosSeed)

	// Claim 1: chaos never changes an answer. Every prediction matches
	// the serial in-process reference bit for bit, for all six kinds.
	for _, tr := range trained {
		got := preds1[string(tr.Kind)]
		for i := range got {
			if got[i] != tr.Want[i] {
				t.Errorf("%s probe %d: chaos-path prediction %v != in-process %v",
					tr.Kind, i, got[i], tr.Want[i])
			}
		}
	}

	// The plan actually bit: injected errors at both sites, retries in
	// the client. A chaos test that injected nothing proves nothing.
	for _, name := range []string{
		"fault.serve.kernel_eval.errors",
		"fault.serve.predict_decode.errors",
		"client.retries",
	} {
		if counters1[name] == 0 {
			t.Errorf("counter %s = 0 — the chaos plan did not engage", name)
		}
	}
	if counters1["client.breaker_opens"] != 0 {
		t.Errorf("breaker opened during the chaos run; its wall-clock cooldown breaks replay determinism")
	}

	// Claim 2: same seed, same run — counter snapshots are identical.
	preds2, counters2 := runChaos(t, trained, chaosSeed)
	for kind, got := range preds2 {
		for i := range got {
			if got[i] != preds1[kind][i] {
				t.Errorf("%s probe %d: second run predicted %v, first %v", kind, i, got[i], preds1[kind][i])
			}
		}
	}
	if err := diffCounters(counters1, counters2); err != nil {
		t.Errorf("same seed, different counters: %v", err)
	}

	// Claim 3: a different seed is a different storm.
	_, counters3 := runChaos(t, trained, chaosSeed+1)
	if diffCounters(counters1, counters3) == nil {
		t.Errorf("seeds %d and %d produced identical counter snapshots", chaosSeed, chaosSeed+1)
	}
}

// diffCounters returns an error describing the first mismatch between
// two counter snapshots, or nil when identical. The columnar arena's
// pool hit/miss/put counters are excluded: sync.Pool eviction rides on
// GC timing, so two bit-identical runs can legitimately differ in how
// often a lease was served from the pool versus freshly allocated —
// the predictions, not the pool traffic, are the determinism contract.
func diffCounters(a, b map[string]int64) error {
	for name, av := range a {
		if strings.HasPrefix(name, "colmat.") {
			continue
		}
		if bv, ok := b[name]; !ok || bv != av {
			return fmt.Errorf("%s: %d vs %d", name, av, bv)
		}
	}
	for name := range b {
		if strings.HasPrefix(name, "colmat.") {
			continue
		}
		if _, ok := a[name]; !ok {
			return fmt.Errorf("%s: only in second snapshot", name)
		}
	}
	return nil
}
