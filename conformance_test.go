package repro_test

// Conformance acceptance suite (ISSUE 5). One registry drives
// everything: every learner in the repo is registered as a
// testkit.Conformer, and this file (a) sweeps the registry's
// property-based and metamorphic checks, (b) proves the differential
// scoring contract — serial vs batched vs decoded-artifact vs HTTP
// serving — on ≥50 generated cases per persisted model kind, (c) checks
// the cross-cutting validation invariants (fold partition,
// stratification), and (d) fails when a learner package exists without
// a registration, so the suite cannot silently go stale.
//
// Every failure report carries a testkit.Replay(seed, name, index)
// one-liner; the whole case derives from those three values, so the
// line alone reproduces it (see EXPERIMENTS.md, "Replaying conformance
// failures").

import (
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/testkit"
)

// conformanceSeed is the fixed root seed for every sweep. Change it and
// every case in the suite changes; print it and any case can be
// replayed.
const conformanceSeed int64 = 20240806

// TestConformanceRegistryCoverage pins the registry's shape: all six
// persisted model kinds, the compiled approx-linear form of each kernel
// kind, plus the non-persisted learner families must be registered.
// This is the single table the rest of the suite iterates.
func TestConformanceRegistryCoverage(t *testing.T) {
	wantPersisted := []string{"svm/svc", "svm/oneclass", "stream/incremental", "linear/ridge",
		"gp", "tree", "rules/cn2sd",
		"svm/svc-approx", "svm/oneclass-approx", "gp-approx"}
	wantOther := []string{"knn", "bayes/naive", "cluster/kmeans", "neural/mlp",
		"semisup/labelprop", "imbalance/smote", "multivar/pls", "core/colmat",
		"maps", "isa/stress"}
	for _, name := range wantPersisted {
		c, ok := testkit.Lookup(name)
		if !ok {
			t.Errorf("persisted conformer %q not registered", name)
			continue
		}
		if !c.Persisted {
			t.Errorf("conformer %q must be marked Persisted (it has an artifact kind)", name)
		}
	}
	for _, name := range wantOther {
		if _, ok := testkit.Lookup(name); !ok {
			t.Errorf("conformer %q not registered", name)
		}
	}
}

// TestConformanceSweep runs every registered conformer's full contract
// — fit, invariants, metamorphic relations, and (for persisted kinds)
// the differential driver — over its generated case sweep.
func TestConformanceSweep(t *testing.T) {
	for _, c := range testkit.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for _, f := range c.Run(conformanceSeed, c.Cases*sweepScale) {
				t.Error(f.String())
			}
		})
	}
}

// TestConformanceDifferential is the scoring-path agreement sweep: for
// every persisted model kind, diffCases generated models (disjoint from
// the metamorphic sweep's indices) are fitted and pushed through every
// scoring path the repo offers — per-row, batched at 1/2/8 workers,
// marshal→decode→score, and HTTP serving — which must agree bit for
// bit.
func TestConformanceDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is the long pole; skipped with -short")
	}
	for _, c := range testkit.All() {
		if !c.Persisted {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < diffCases; i++ {
				idx := 1_000_000 + i // disjoint from the metamorphic sweep
				cs := c.Case(conformanceSeed, idx)
				f, err := c.Fit(cs)
				if err != nil {
					t.Fatalf("case %d: fit: %v\nreplay: %s", idx, err,
						testkit.ReplayHint(conformanceSeed, c.Name, idx))
				}
				if err := testkit.DiffPaths(f.Model, cs.Probes); err != nil {
					t.Fatalf("case %d: %v\nreplay: %s", idx, err,
						testkit.ReplayHint(conformanceSeed, c.Name, idx))
				}
			}
		})
	}
}

// TestConformanceFoldInvariants checks the validation-layer invariants
// the metamorphic registry cannot express per-learner: k-fold index
// sets partition the sample set, and stratified splits preserve class
// proportions.
func TestConformanceFoldInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(testkit.Mix(conformanceSeed, 1)))
	for _, n := range []int{10, 37, 100} {
		for _, k := range []int{2, 5, 10} {
			if k > n {
				continue
			}
			train, test := dataset.KFold(r, n, k)
			if err := testkit.CheckFoldPartition(train, test, n); err != nil {
				t.Errorf("KFold(n=%d, k=%d): %v", n, k, err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		d := dataset.TwoGaussians(r, 120, 3, 2.0, 1.0)
		train, test := d.StratifiedSplit(r, 0.7)
		if train.Len()+test.Len() != d.Len() {
			t.Fatalf("stratified split lost rows: %d + %d != %d", train.Len(), test.Len(), d.Len())
		}
		if err := testkit.CheckStratification(d, train, 0.7, 0.05); err != nil {
			t.Errorf("stratified split %d: %v", i, err)
		}
	}
}

// learnerEntryPoint matches the top-level declarations that make a
// package a learner for completeness purposes: Fit-prefixed
// constructors plus the named training entry points that don't follow
// the Fit convention.
var learnerEntryPoint = regexp.MustCompile(`(?m)^func (Fit\w*|CN2SD|KMeans|LabelPropagation|SelfTrain|SMOTE)\(`)

// completenessExcluded are internal packages that match
// learnerEntryPoint but are deliberately outside the conformance
// registry, with the reason on record. Removing an entry (or adding a
// new learner package) without registering a conformer fails
// TestConformanceCompleteness.
var completenessExcluded = map[string]string{
	"dataset":   "FitScaler is feature preprocessing, not a predictor",
	"transform": "PCA/ICA/KernelPCA are unsupervised feature transforms with their own algebraic tests",
}

// TestConformanceCompleteness scans internal/ for learner packages and
// fails if any of them has no registered conformer — the guarantee that
// a learner added in a future PR cannot dodge the suite.
func TestConformanceCompleteness(t *testing.T) {
	registered := map[string]bool{}
	for _, c := range testkit.All() {
		registered[c.Pkg] = true
	}

	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatalf("read internal/: %v", err)
	}
	foundLearner := false
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		if !packageHasLearner(t, filepath.Join("internal", pkg)) {
			continue
		}
		foundLearner = true
		if reason, excluded := completenessExcluded[pkg]; excluded {
			t.Logf("package %s excluded from conformance: %s", pkg, reason)
			continue
		}
		if !registered[pkg] {
			t.Errorf("package internal/%s declares a learner entry point but has no conformer; "+
				"register one in internal/testkit/conformers.go or add a documented exclusion", pkg)
		}
	}
	if !foundLearner {
		t.Fatal("completeness scan found no learner packages at all — the entry-point regexp is broken")
	}
	for pkg := range registered {
		if _, err := os.Stat(filepath.Join("internal", pkg)); err != nil {
			t.Errorf("conformer registered for non-existent package internal/%s", pkg)
		}
	}
}

func packageHasLearner(t *testing.T, dir string) bool {
	t.Helper()
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, f := range files {
		name := f.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if learnerEntryPoint.Match(src) {
			return true
		}
	}
	return false
}

// intoEntryPoint matches the destination-passing batch entry points the
// columnar core introduced: any exported method or function whose name
// ends in "Into". Each one bypasses the allocating wrapper the rest of
// the suite exercises, so each must be pinned by a named test or it can
// silently drift from its allocating twin.
var intoEntryPoint = regexp.MustCompile(`(?m)^func (?:\([^)]+\) )?([A-Z]\w*Into)\(`)

// coveredInto maps every pkg.Method Into entry point in internal/ to
// the test that pins it bit-for-bit against its allocating twin (or to
// the conformer exercising it through pooled buffers). Adding an Into
// method without extending this map fails
// TestConformanceIntoCompleteness; so does leaving a stale entry after
// deleting one.
var coveredInto = map[string]string{
	"linalg.MulInto":          "linalg.TestIntoVariantsMatchAllocating",
	"linalg.MulVecInto":       "linalg.TestIntoVariantsMatchAllocating",
	"linalg.ColInto":          "linalg.TestColInto",
	"kernel.GramInto":         "kernel.TestIntoVariantsMatchAllocating",
	"kernel.CrossGramInto":    "core/colmat conformer (fresh vs recycled buffer) + kernel.TestIntoVariantsMatchAllocating",
	"kernel.WindowInto":       "kernel.TestIntoVariantsMatchAllocating + stream/incremental conformer",
	"svm.DecisionBatchInto":   "core/colmat conformer + DiffPaths differential sweep",
	"svm.PredictBatchInto":    "DiffPaths differential sweep (svm/svc, all worker counts)",
	"gp.PredictBatchInto":     "DiffPaths differential sweep (gp, all worker counts)",
	"linear.PredictBatchInto": "DiffPaths differential sweep (linear/ridge, all worker counts)",
	"tree.PredictBatchInto":   "DiffPaths differential sweep (tree, all worker counts)",
	"rules.PredictBatchInto":  "DiffPaths differential sweep (rules/cn2sd, all worker counts)",
	"approx.ScoreBatchInto":   "DiffPaths differential sweep (*-approx kinds) + alloc gate",
	"model.ScoreBatchInto":    "DiffPaths differential sweep (every persisted kind over Scorer) + alloc gate",
	"dataset.ColInto":         "delegates to linalg.ColInto; see linalg.TestColInto",
}

// TestConformanceIntoCompleteness scans internal/ for Into-suffixed
// batch entry points and fails when one exists without a coverage entry
// — the guarantee that a future zero-alloc path cannot ship without a
// test pinning it to its allocating twin.
func TestConformanceIntoCompleteness(t *testing.T) {
	found := map[string]bool{}
	var walk func(dir string)
	walk = func(dir string) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			path := filepath.Join(dir, e.Name())
			if e.IsDir() {
				walk(path)
				continue
			}
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			pkg := filepath.Base(dir)
			for _, m := range intoEntryPoint.FindAllSubmatch(src, -1) {
				found[pkg+"."+string(m[1])] = true
			}
		}
	}
	walk("internal")
	if len(found) == 0 {
		t.Fatal("Into-entry-point scan found nothing — the regexp is broken")
	}
	for key := range found {
		if _, ok := coveredInto[key]; !ok {
			t.Errorf("Into entry point %s has no coverage entry; add a test pinning it "+
				"to its allocating twin and record it in coveredInto", key)
		}
	}
	for key := range coveredInto {
		if !found[key] {
			t.Errorf("coveredInto lists %s but no such entry point exists; remove the stale entry", key)
		}
	}
}

// TestConformanceReplay proves the reproduction contract: the
// (seed, name, index) triple a failure report prints is sufficient to
// re-derive and re-run the identical case, and replaying a passing case
// passes.
func TestConformanceReplay(t *testing.T) {
	for _, name := range []string{"linear/ridge", "tree"} {
		if err := testkit.Replay(conformanceSeed, name, 0); err != nil {
			t.Errorf("replay of passing case %s failed: %v", name, err)
		}
	}
	c, _ := testkit.Lookup("gp")
	a := c.Case(conformanceSeed, 2)
	b := c.Case(conformanceSeed, 2)
	if err := testkit.Exact.Compare(a.Train.X.Data, b.Train.X.Data); err != nil {
		t.Fatalf("case derivation is not pure: %v", err)
	}
}
